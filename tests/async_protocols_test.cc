// Async-protocol differential tests: the event-driven protocols
// (protocols/async.h) must produce answers bit-identical — per column and
// per annotation bit pattern — to the synchronous round-ledger protocols on
// every instance, across semirings and parallelism levels, while obeying
// the streaming transport's page budget and reporting makespan/utilization.
//
// CI also runs this suite with TOPOFAQ_PAGE_BUDGET=2 (a hard per-node page
// budget far below the payload sizes below), which forces the
// larger-than-budget backpressure path through every differential case.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bit_identity.h"
#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "protocols/async.h"
#include "protocols/distributed.h"
#include "server/options.h"
#include "util/rng.h"

namespace topofaq {
namespace {

/// Per-node page budget for the differential sweeps: the CI streaming job
/// pins it to a tiny value via TOPOFAQ_PAGE_BUDGET so the
/// larger-than-budget path is provably exercised. Read through the one env
/// parser (EngineOptions::FromEnv, server/options.cc).
int64_t BudgetFromEnv() { return EngineOptions::FromEnv().page_budget; }

template <CommutativeSemiring S>
typename S::Value RandomAnnot(Rng* rng) {
  const uint64_t u = rng->NextU64(100) + 1;
  if constexpr (std::is_same_v<typename S::Value, double>) {
    return static_cast<double>(u) * 0.5;
  } else if constexpr (sizeof(typename S::Value) == 1) {
    return S::One();  // Boolean/GF2: stay on the canonical {0,1} values
  } else {
    return static_cast<typename S::Value>(u % 3 + 1);
  }
}

template <CommutativeSemiring S>
Relation<S> RandomRelation(const std::vector<VarId>& vars, int tuples,
                           uint64_t domain, Rng* rng) {
  Relation<S> r{Schema(vars)};
  std::vector<Value> row(vars.size());
  for (int i = 0; i < tuples; ++i) {
    for (auto& v : row) v = rng->NextU64(domain);
    r.Add(row, RandomAnnot<S>(rng));
  }
  r.Canonicalize();
  return r;
}

template <CommutativeSemiring S>
DistInstance<S> RandomInstance(int seed, Graph g, int tuples = 12,
                               uint64_t domain = 4) {
  Rng rng(seed);
  Hypergraph h = RandomAcyclicHypergraph(4, 3, &rng);
  std::vector<Relation<S>> rels;
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(RandomRelation<S>(h.edge(e), tuples, domain, &rng));
  DistInstance<S> inst;
  inst.query = MakeFaqSS<S>(h, std::move(rels), {});
  inst.topology = std::move(g);
  inst.owners =
      RoundRobinOwners(h.num_edges(), inst.topology.num_nodes());
  inst.sink = inst.topology.num_nodes() - 1;
  return inst;
}

/// Small pages so even the 12-tuple relations above span several pages.
AsyncProtocolOptions SmallPageOptions(int parallelism = 0) {
  AsyncProtocolOptions opts;
  opts.stream.page_rows = 4;
  opts.stream.node_page_budget = BudgetFromEnv();
  opts.parallelism = parallelism;
  return opts;
}

// ------------------------------------------------------------- trivial async

TEST(TrivialAsync, MatchesSyncOnRandomInstances) {
  for (int seed = 0; seed < 8; ++seed) {
    auto inst = RandomInstance<BooleanSemiring>(400 + seed, LineTopology(4));
    auto sync = RunTrivialProtocol(inst);
    auto async = RunTrivialProtocolAsync(inst, SmallPageOptions());
    ASSERT_TRUE(sync.ok() && async.ok()) << seed;
    EXPECT_TRUE(BytesEqual(sync->answer, async->answer));
    EXPECT_GT(async->stats.makespan, 0.0);
    EXPECT_GT(async->stats.total_bits, 0);
    EXPECT_GT(async->stats.pages, 0);
    EXPECT_LE(async->stats.max_in_flight_pages,
              SmallPageOptions().stream.node_page_budget);
  }
}

TEST(TrivialAsync, NoCommunicationWhenSinkOwnsEverything) {
  auto inst = RandomInstance<BooleanSemiring>(410, LineTopology(3));
  for (auto& o : inst.owners) o = 2;
  inst.sink = 2;
  auto async = RunTrivialProtocolAsync(inst, SmallPageOptions());
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async->stats.total_bits, 0);
  EXPECT_EQ(async->stats.pages, 0);
  EXPECT_DOUBLE_EQ(async->stats.makespan, 0.0);
  auto sync = RunTrivialProtocol(inst);
  ASSERT_TRUE(sync.ok());
  EXPECT_TRUE(BytesEqual(sync->answer, async->answer));
}

TEST(TrivialAsync, EmptyRelationStreamsAndSolves) {
  auto inst = RandomInstance<NaturalSemiring>(420, LineTopology(4));
  inst.query.relations[1] = Relation<NaturalSemiring>{
      Schema(inst.query.hypergraph.edge(1))};
  inst.query.relations[1].Canonicalize();
  auto sync = RunTrivialProtocol(inst);
  auto async = RunTrivialProtocolAsync(inst, SmallPageOptions());
  ASSERT_TRUE(sync.ok() && async.ok());
  EXPECT_TRUE(BytesEqual(sync->answer, async->answer));
}

TEST(TrivialAsync, ParallelismKnobKeepsAnswersBitIdentical) {
  auto inst = RandomInstance<CountingSemiring>(430, CliqueTopology(4), 40, 6);
  TrivialOptions p1{.parallelism = 1}, p2{.parallelism = 2};
  auto s1 = RunTrivialProtocol(inst, p1);
  auto s2 = RunTrivialProtocol(inst, p2);
  auto a2 = RunTrivialProtocolAsync(inst, SmallPageOptions(2));
  ASSERT_TRUE(s1.ok() && s2.ok() && a2.ok());
  EXPECT_TRUE(BytesEqual(s1->answer, s2->answer));
  EXPECT_TRUE(BytesEqual(s1->answer, a2->answer));
}

TEST(TrivialAsync, NonCanonicalInputIsRejectedWithStatus) {
  // The sync protocols accept unsorted listings; the streaming transport
  // cuts sorted pages, so the async protocols surface the requirement as a
  // Status instead of CHECK-crashing mid-simulation.
  auto inst = RandomInstance<NaturalSemiring>(440, LineTopology(3));
  Relation<NaturalSemiring> raw{Schema(inst.query.hypergraph.edge(0))};
  std::vector<Value> row(raw.arity(), 1);
  raw.Add(row, 2);
  row[0] = 0;
  raw.Add(row, 3);  // out of order: not canonical
  ASSERT_FALSE(raw.canonical());
  inst.query.relations[0] = std::move(raw);
  ASSERT_TRUE(RunTrivialProtocol(inst).ok());
  auto async = RunTrivialProtocolAsync(inst, SmallPageOptions());
  ASSERT_FALSE(async.ok());
  EXPECT_NE(async.status().message().find("Canonicalize"), std::string::npos);
  EXPECT_FALSE(RunCoreForestProtocolAsync(inst, SmallPageOptions()).ok());
}

// ---------------------------------------------------------- core-forest async

template <CommutativeSemiring S>
void CoreForestDifferential(int seed, Graph g, int parallelism) {
  auto inst = RandomInstance<S>(seed, std::move(g));
  CoreForestOptions sopts;
  sopts.parallelism = parallelism;
  AsyncProtocolOptions aopts = SmallPageOptions(parallelism);
  auto sync = RunCoreForestProtocol(inst, sopts);
  auto async = RunCoreForestProtocolAsync(inst, aopts);
  ASSERT_TRUE(sync.ok() && async.ok())
      << S::kName << " seed=" << seed << " p=" << parallelism;
  EXPECT_TRUE(BytesEqual(sync->answer, async->answer));
  EXPECT_LE(async->stats.max_in_flight_pages, aopts.stream.node_page_budget);
}

TEST(CoreForestAsync, BitIdenticalAcrossSemiringsAndParallelism) {
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  for (int p : {1, 2, hw}) {
    for (int seed = 0; seed < 3; ++seed) {
      Graph topo = (seed % 2 == 0) ? Graph(LineTopology(5))
                                   : Graph(CliqueTopology(5));
      CoreForestDifferential<BooleanSemiring>(500 + seed, topo, p);
      CoreForestDifferential<NaturalSemiring>(520 + seed, topo, p);
      CoreForestDifferential<CountingSemiring>(540 + seed, topo, p);
      CoreForestDifferential<MinPlusSemiring>(560 + seed, topo, p);
    }
  }
}

TEST(CoreForestAsync, CyclicQueryMatchesSync) {
  Rng rng(600);
  Hypergraph h = CycleGraph(4);
  std::vector<Relation<BooleanSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(RandomRelation<BooleanSemiring>(h.edge(e), 10, 3, &rng));
  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(h, std::move(rels));
  inst.topology = RingTopology(5);
  inst.owners = RoundRobinOwners(h.num_edges(), 5);
  inst.sink = 0;
  auto sync = RunCoreForestProtocol(inst);
  auto async = RunCoreForestProtocolAsync(inst, SmallPageOptions());
  ASSERT_TRUE(sync.ok() && async.ok());
  EXPECT_TRUE(BytesEqual(sync->answer, async->answer));
}

TEST(CoreForestAsync, FreeVariableMarginalMatchesSync) {
  Rng rng(610);
  Hypergraph h = PaperH2();
  std::vector<Relation<CountingSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(RandomRelation<CountingSemiring>(h.edge(e), 10, 3, &rng));
  DistInstance<CountingSemiring> inst;
  inst.query = MakeFactorMarginal(h, std::move(rels), /*marginal_edge=*/0);
  inst.topology = BalancedTreeTopology(2, 2);
  inst.owners = RoundRobinOwners(h.num_edges(), inst.topology.num_nodes());
  inst.sink = 0;
  auto sync = RunCoreForestProtocol(inst);
  auto async = RunCoreForestProtocolAsync(inst, SmallPageOptions());
  ASSERT_TRUE(sync.ok() && async.ok());
  EXPECT_TRUE(BytesEqual(sync->answer, async->answer));
}

// ------------------------------------------------- acceptance: page budget

TEST(AsyncAcceptance, OversizedPayloadCompletesWithinPageBudget) {
  // Total payload far exceeds the budget: 4 relations x 200 rows at 4 rows
  // per page is ~200 pages against a per-source-node budget of 2. The run
  // must finish with bit-identical answers while no source ever has more
  // than 2 of its pages in flight (asserted via the ledger's high-water
  // mark; relays forward pages charged to their source on top of their own
  // budget).
  auto inst =
      RandomInstance<NaturalSemiring>(700, LineTopology(4), 200, 1 << 16);
  AsyncProtocolOptions opts;
  opts.stream.page_rows = 4;
  opts.stream.node_page_budget = 2;
  auto sync = RunTrivialProtocol(inst);
  auto async = RunTrivialProtocolAsync(inst, opts);
  ASSERT_TRUE(sync.ok() && async.ok());
  EXPECT_TRUE(BytesEqual(sync->answer, async->answer));
  EXPECT_GT(async->stats.pages, opts.stream.node_page_budget);
  EXPECT_LE(async->stats.max_in_flight_pages, opts.stream.node_page_budget);
  EXPECT_GE(async->stats.max_in_flight_pages, 1);
  EXPECT_GT(async->stats.makespan, 0.0);
  EXPECT_GT(async->stats.total_bits, 0);
}

TEST(AsyncAcceptance, UtilizationIsReportedPerEdge) {
  auto inst = RandomInstance<BooleanSemiring>(710, LineTopology(4), 64, 8);
  auto async = RunTrivialProtocolAsync(inst, SmallPageOptions());
  ASSERT_TRUE(async.ok());
  ASSERT_EQ(async->stats.edge_utilization.size(),
            static_cast<size_t>(inst.topology.num_edges()));
  EXPECT_GT(async->stats.max_edge_utilization, 0.0);
  for (double u : async->stats.edge_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

// ------------------------------------------- high-capacity regime hand-off

TEST(HighCapacity, SyncProtocolsRejectAboveLedgerLimit) {
  auto inst = RandomInstance<BooleanSemiring>(720, LineTopology(4));
  inst.capacity_bits = int64_t{1} << 20;  // > SyncNetwork::kMaxCapacityBits
  auto trivial = RunTrivialProtocol(inst);
  ASSERT_FALSE(trivial.ok());
  EXPECT_NE(trivial.status().message().find("AsyncNetwork"),
            std::string::npos);
  auto forest = RunCoreForestProtocol(inst);
  ASSERT_FALSE(forest.ok());
}

TEST(HighCapacity, AsyncProtocolsTakeOver) {
  auto inst = RandomInstance<BooleanSemiring>(720, LineTopology(4));
  auto baseline = RunTrivialProtocol(inst);  // derived (small) capacity
  inst.capacity_bits = int64_t{1} << 20;
  auto async = RunTrivialProtocolAsync(inst, SmallPageOptions());
  auto forest = RunCoreForestProtocolAsync(inst, SmallPageOptions());
  ASSERT_TRUE(baseline.ok() && async.ok() && forest.ok());
  EXPECT_TRUE(BytesEqual(baseline->answer, async->answer));
  EXPECT_TRUE(BytesEqual(baseline->answer, forest->answer));
  // The fat pipe moves the same bits in (much) less simulated time.
  EXPECT_GT(async->stats.total_bits, 0);
  EXPECT_LT(async->stats.makespan,
            static_cast<double>(baseline->stats.rounds) + 1.0);
}

}  // namespace
}  // namespace topofaq
