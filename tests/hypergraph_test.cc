// Hypergraph, GYO reduction, degeneracy and generator tests — including the
// exact Appendix C.2 execution of GYO on H3.
#include <gtest/gtest.h>

#include <set>

#include "hypergraph/degeneracy.h"
#include "hypergraph/generators.h"
#include "hypergraph/gyo.h"
#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace topofaq {
namespace {

TEST(Hypergraph, BasicAccessors) {
  Hypergraph h(4, {{0, 1}, {1, 2, 3}, {0}});
  EXPECT_EQ(h.num_vertices(), 4);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.MaxArity(), 3);
  EXPECT_EQ(h.Degree(0), 2);
  EXPECT_EQ(h.Degree(1), 2);
  EXPECT_EQ(h.Degree(3), 1);
  EXPECT_TRUE(h.EdgeContains(1, 3));
  EXPECT_FALSE(h.EdgeContains(0, 3));
  EXPECT_EQ(h.IncidentEdges(0), (std::vector<int>{0, 2}));
}

TEST(Hypergraph, EdgesAreSortedAndDeduped) {
  Hypergraph h(5, {{3, 1, 3, 2}});
  EXPECT_EQ(h.edge(0), (std::vector<VarId>{1, 2, 3}));
}

TEST(Hypergraph, IsGraphDetectsArity) {
  EXPECT_TRUE(PaperH1().IsGraph());
  EXPECT_FALSE(PaperH2().IsGraph());
  EXPECT_TRUE(PaperH0().IsGraph());  // self-loops are arity 1
}

TEST(PaperQueries, ShapesMatchFigure1) {
  Hypergraph h1 = PaperH1();
  EXPECT_EQ(h1.num_edges(), 4);
  EXPECT_EQ(h1.Degree(0), 4);  // A is the star center
  Hypergraph h2 = PaperH2();
  EXPECT_EQ(h2.num_edges(), 4);
  EXPECT_EQ(h2.MaxArity(), 3);
  Hypergraph h0 = PaperH0();
  EXPECT_EQ(h0.num_vertices(), 1);
  EXPECT_EQ(h0.Degree(0), 4);
}

// --- Acyclicity (Definition 2.5) ------------------------------------------

TEST(Gyo, AcyclicInstances) {
  EXPECT_TRUE(IsAcyclic(PaperH0()));
  EXPECT_TRUE(IsAcyclic(PaperH1()));
  EXPECT_TRUE(IsAcyclic(PaperH2()));
  EXPECT_TRUE(IsAcyclic(StarGraph(6)));
  EXPECT_TRUE(IsAcyclic(PathGraph(7)));
}

TEST(Gyo, CyclicInstances) {
  EXPECT_FALSE(IsAcyclic(CycleGraph(3)));
  EXPECT_FALSE(IsAcyclic(CycleGraph(6)));
  EXPECT_FALSE(IsAcyclic(CliqueGraph(4)));
  EXPECT_FALSE(IsAcyclic(PaperH3()));
}

TEST(Gyo, TriangleWithCoveringEdgeIsAcyclic) {
  // {0,1},{1,2},{0,2},{0,1,2}: the big edge absorbs the triangle.
  Hypergraph h(3, {{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}});
  EXPECT_TRUE(IsAcyclic(h));
}

TEST(Gyo, ResidualOfH3IsTheTriangleCore) {
  // Appendix C.2: GYO leaves E' = {e1, e2, e3} = our edge ids 0, 1, 2.
  GyoResult r = GyoReduce(PaperH3());
  EXPECT_FALSE(r.acyclic);
  EXPECT_EQ(r.residual_edges, (std::vector<int>{0, 1, 2}));
}

TEST(Gyo, H3ForestMatchesAppendixC2) {
  // The removed edges e4..e7 (our 3..6) form one tree rooted at e4 (our 3):
  // e5=(A,F) and e6=(B,G) hang under e4=(A,B,E); e7=(G,H) hangs under e6.
  CoreForest cf = DecomposeCoreForest(PaperH3());
  EXPECT_EQ(cf.root_edges, (std::vector<int>{3}));
  EXPECT_EQ(cf.parent[4], 3);  // (A,F) under (A,B,E)
  EXPECT_EQ(cf.parent[5], 3);  // (B,G) under (A,B,E)
  EXPECT_EQ(cf.parent[6], 5);  // (G,H) under (B,G)
  // V(C(H3)) = {A,B,C,D} ∪ {A,B,E} = {A,B,C,D,E}; n2 = 5 (Appendix C.2).
  EXPECT_EQ(cf.core_vertices, (std::vector<VarId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(cf.n2(), 5);
}

TEST(Gyo, H3TraceMentionsEveryRemovedEdge) {
  GyoResult r = GyoReduce(PaperH3());
  std::set<int> deleted_in_trace;
  for (const auto& s : r.trace)
    if (s.kind == GyoStep::Kind::kDeleteEdge) deleted_in_trace.insert(s.edge);
  EXPECT_EQ(deleted_in_trace, (std::set<int>{3, 4, 5, 6}));
  EXPECT_FALSE(TraceToString(PaperH3(), r).empty());
}

TEST(Gyo, AcyclicForestHasSingleRootPerComponent) {
  // Two disjoint paths: two trees, two roots.
  Hypergraph h(8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}});
  CoreForest cf = DecomposeCoreForest(h);
  EXPECT_TRUE(cf.gyo.acyclic);
  EXPECT_TRUE(cf.core_edges.empty());
  EXPECT_EQ(cf.root_edges.size(), 2u);
}

TEST(Gyo, StarReducesToSingleTree) {
  CoreForest cf = DecomposeCoreForest(StarGraph(5));
  EXPECT_TRUE(cf.gyo.acyclic);
  EXPECT_EQ(cf.root_edges.size(), 1u);
  EXPECT_EQ(cf.forest_edges.size(), 4u);
  EXPECT_EQ(cf.n2(), 2);  // the root edge (center, leaf)
}

TEST(Gyo, CycleCoreKeepsAllEdges) {
  CoreForest cf = DecomposeCoreForest(CycleGraph(5));
  EXPECT_EQ(cf.core_edges.size(), 5u);
  EXPECT_TRUE(cf.root_edges.empty());
  EXPECT_EQ(cf.n2(), 5);
}

TEST(Gyo, ParentsPointToLaterDeletedContainingEdges) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(8, 4, &rng);
    GyoResult r = GyoReduce(h);
    EXPECT_TRUE(r.acyclic);
    for (int e = 0; e < h.num_edges(); ++e) {
      if (!r.deleted[e] || r.parent[e] < 0) continue;
      const int p = r.parent[e];
      EXPECT_GT(r.delete_time[p], r.delete_time[e]);
      // residual_set[e] ⊆ original edge p.
      for (VarId v : r.residual_set[e]) EXPECT_TRUE(h.EdgeContains(p, v));
    }
  }
}

// --- Degeneracy (Definition 3.3) -------------------------------------------

TEST(Degeneracy, KnownGraphs) {
  EXPECT_EQ(ComputeDegeneracy(StarGraph(9)).degeneracy, 1);
  EXPECT_EQ(ComputeDegeneracy(PathGraph(9)).degeneracy, 1);
  EXPECT_EQ(ComputeDegeneracy(CycleGraph(8)).degeneracy, 2);
  EXPECT_EQ(ComputeDegeneracy(CliqueGraph(5)).degeneracy, 4);
}

TEST(Degeneracy, TreesAreOneDegenerate) {
  Rng rng(3);
  for (int iter = 0; iter < 10; ++iter)
    EXPECT_EQ(ComputeDegeneracy(RandomTree(12, &rng)).degeneracy, 1);
}

TEST(Degeneracy, RandomDDegenerateRespectsBound) {
  Rng rng(4);
  for (int d = 1; d <= 4; ++d) {
    Hypergraph h = RandomDDegenerate(20, d, &rng);
    EXPECT_LE(ComputeDegeneracy(h).degeneracy, d);
  }
}

TEST(Degeneracy, EliminationOrderCoversUsedVertices) {
  Hypergraph h = PaperH3();
  DegeneracyResult r = ComputeDegeneracy(h);
  EXPECT_EQ(r.elimination_order.size(), h.UsedVertices().size());
}

// --- Generators -------------------------------------------------------------

TEST(Generators, RandomTreeHasCorrectEdgeCount) {
  Rng rng(5);
  for (int n = 2; n <= 15; ++n) {
    Hypergraph t = RandomTree(n, &rng);
    EXPECT_EQ(t.num_edges(), n - 1);
    EXPECT_TRUE(IsAcyclic(t));
  }
}

TEST(Generators, RandomForestIsAcyclic) {
  Rng rng(6);
  Hypergraph f = RandomForest(3, 5, &rng);
  EXPECT_EQ(f.num_edges(), 3 * 4);
  EXPECT_TRUE(IsAcyclic(f));
}

TEST(Generators, RandomAcyclicHypergraphIsAcyclic) {
  Rng rng(7);
  for (int iter = 0; iter < 25; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(10, 4, &rng);
    EXPECT_EQ(h.num_edges(), 10);
    EXPECT_LE(h.MaxArity(), 4);
    EXPECT_TRUE(IsAcyclic(h)) << h.DebugString();
  }
}

TEST(Generators, RandomHypergraphRespectsArity) {
  Rng rng(8);
  Hypergraph h = RandomHypergraph(15, 3, 3, &rng);
  EXPECT_LE(h.MaxArity(), 3);
}

class DegeneracySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DegeneracySweep, GeneratedGraphsMatchRequestedDegeneracy) {
  auto [n, d] = GetParam();
  Rng rng(n * 100 + d);
  Hypergraph h = RandomDDegenerate(n, d, &rng);
  int got = ComputeDegeneracy(h).degeneracy;
  EXPECT_LE(got, d);
  EXPECT_GE(got, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DegeneracySweep,
    ::testing::Combine(::testing::Values(8, 16, 32), ::testing::Values(1, 2, 3, 5)));

}  // namespace
}  // namespace topofaq
