// Graph, max-flow/min-cut, Steiner-tree packing and gather-planning tests —
// including the Example 2.3 packing (two edge-disjoint Hamiltonian paths in
// the 4-clique G2) and MinCut(G1, K) = 1 from Example 2.4.
#include <gtest/gtest.h>

#include "graphalg/graph.h"
#include "graphalg/maxflow.h"
#include "graphalg/routing.h"
#include "graphalg/steiner.h"
#include "graphalg/topologies.h"
#include "util/rng.h"

namespace topofaq {
namespace {

TEST(Graph, BasicAccessors) {
  Graph g(4);
  int e01 = g.AddEdge(0, 1);
  int e12 = g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.EdgeBetween(2, 1), e12);
  EXPECT_EQ(g.OtherEnd(e01, 0), 1);
  EXPECT_EQ(g.OtherEnd(e01, 1), 0);
  EXPECT_EQ(g.DegreeOf(1), 2);
}

TEST(Graph, BfsDistancesAndPaths) {
  Graph g = LineTopology(5);
  auto d = g.BfsDistances(0);
  EXPECT_EQ(d[4], 4);
  auto p = g.ShortestPath(0, 3);
  EXPECT_EQ(p, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Graph, EdgeFilterRestrictsTraversal) {
  Graph g = CliqueTopology(4);
  std::vector<bool> alive(g.num_edges(), false);
  alive[g.EdgeBetween(0, 1)] = true;
  alive[g.EdgeBetween(1, 2)] = true;
  auto d = g.BfsDistances(0, &alive);
  EXPECT_EQ(d[2], 2);  // forced through 1
  EXPECT_EQ(d[3], -1);
}

TEST(Graph, Diameters) {
  EXPECT_EQ(LineTopology(6).Diameter(), 5);
  EXPECT_EQ(CliqueTopology(6).Diameter(), 1);
  EXPECT_EQ(RingTopology(8).Diameter(), 4);
  EXPECT_EQ(GridTopology(3, 4).Diameter(), 5);
  EXPECT_EQ(LineTopology(6).DiameterAmong({1, 3}), 2);
}

TEST(Topologies, ShapesAndSizes) {
  EXPECT_EQ(CliqueTopology(5).num_edges(), 10);
  EXPECT_EQ(StarTopology(7).num_edges(), 6);
  EXPECT_EQ(GridTopology(3, 3).num_edges(), 12);
  EXPECT_EQ(BalancedTreeTopology(2, 3).num_nodes(), 15);
  EXPECT_EQ(BalancedTreeTopology(2, 3).num_edges(), 14);
  EXPECT_EQ(DumbbellTopology(4, 4).num_edges(), 2 * 6 + 1);
  Graph mpc = MpcZeroTopology(3, 4);
  EXPECT_EQ(mpc.num_nodes(), 7);
  EXPECT_EQ(mpc.num_edges(), 6 + 12);  // p-clique + k*p links
  EXPECT_TRUE(mpc.IsConnected());
}

TEST(Topologies, RandomConnectedIsConnected) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(RandomConnectedTopology(12, 5, &rng).IsConnected());
}

// --- Max flow / min cut -----------------------------------------------------

TEST(MaxFlow, LineHasUnitFlow) {
  EXPECT_EQ(MaxFlow(LineTopology(5), 0, 4), 1);
}

TEST(MaxFlow, CliqueFlowEqualsDegree) {
  EXPECT_EQ(MaxFlow(CliqueTopology(5), 0, 4), 4);
}

TEST(MaxFlow, RingHasTwoPaths) { EXPECT_EQ(MaxFlow(RingTopology(6), 0, 3), 2); }

TEST(MaxFlow, CapacityScalesFlow) {
  EXPECT_EQ(MaxFlow(LineTopology(3), 0, 2, /*capacity=*/7), 7);
}

TEST(MaxFlow, FromSetUsesAllSources) {
  Graph g = StarTopology(5);
  // Sources are all spokes; hub absorbs 4 unit flows.
  EXPECT_EQ(MaxFlowFromSet(g, {1, 2, 3, 4}, 0), 4);
}

TEST(MinCut, LineSeparatingCutIsOne) {
  // Example 2.4: MinCut(G1, K) = 1.
  MinCutResult r = MinCutBetween(LineTopology(4), {0, 1, 2, 3});
  EXPECT_EQ(r.value, 1);
  EXPECT_EQ(r.cut_edges.size(), 1u);
}

TEST(MinCut, CliqueCutIsDegree) {
  MinCutResult r = MinCutBetween(CliqueTopology(4), {0, 1, 2, 3});
  EXPECT_EQ(r.value, 3);
}

TEST(MinCut, DumbbellBridgeIsTheCut) {
  Graph g = DumbbellTopology(4, 4);
  MinCutResult r = MinCutBetween(g, {0, 7});
  EXPECT_EQ(r.value, 1);
  ASSERT_EQ(r.cut_edges.size(), 1u);
  auto [u, v] = g.edge(r.cut_edges[0]);
  EXPECT_EQ(u, 3);
  EXPECT_EQ(v, 4);
}

TEST(MinCut, SubsetTerminalsCanHaveLargerCut) {
  // On a line with terminals at both ends of a 2-wide section... use grid:
  Graph g = GridTopology(3, 3);
  MinCutResult corner = MinCutBetween(g, {0, 8});
  EXPECT_EQ(corner.value, 2);  // corner degree limits the cut
}

// --- Steiner tree packing ----------------------------------------------------

TEST(Steiner, LinePacksExactlyOneTree) {
  Graph g = LineTopology(4);
  auto trees = PackSteinerTrees(g, {0, 1, 2, 3}, 3, /*seed=*/1);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_TRUE(ValidatePacking(g, {0, 1, 2, 3}, 3, trees));
}

TEST(Steiner, CliquePacksTwoHamiltonianPaths) {
  // Example 2.3 / Figure 2: W1 and W2 — two edge-disjoint diameter-3
  // Steiner trees in the 4-clique spanning all four players.
  Graph g = CliqueTopology(4);
  auto trees = PackSteinerTrees(g, {0, 1, 2, 3}, 3, /*seed=*/7);
  EXPECT_EQ(trees.size(), 2u);
  EXPECT_TRUE(ValidatePacking(g, {0, 1, 2, 3}, 3, trees));
}

TEST(Steiner, CliqueDiameterTwoPacksOneStar) {
  Graph g = CliqueTopology(4);
  auto trees = PackSteinerTrees(g, {0, 1, 2, 3}, 2, /*seed=*/3);
  EXPECT_GE(trees.size(), 1u);
  EXPECT_TRUE(ValidatePacking(g, {0, 1, 2, 3}, 2, trees));
}

TEST(Steiner, LargerCliquePacksAboutHalfN) {
  Graph g = CliqueTopology(8);
  std::vector<NodeId> k{0, 1, 2, 3, 4, 5, 6, 7};
  auto trees = PackSteinerTrees(g, k, 7, /*seed=*/11, /*restarts=*/48);
  // 8-clique has 28 edges; a spanning tree needs 7: at most 4 trees. Lau's
  // bound guarantees Ω(MinCut) = Ω(7); our greedy should find >= 3.
  EXPECT_GE(trees.size(), 3u);
  EXPECT_TRUE(ValidatePacking(g, k, 7, trees));
}

TEST(Steiner, PackingRespectsMinCutUpperBound) {
  Rng rng(21);
  for (int iter = 0; iter < 10; ++iter) {
    Graph g = RandomConnectedTopology(10, 6, &rng);
    std::vector<NodeId> k{0, 3, 7, 9};
    auto cut = MinCutBetween(g, k);
    auto trees = PackSteinerTrees(g, k, g.num_nodes(), /*seed=*/iter);
    EXPECT_LE(static_cast<int64_t>(trees.size()), cut.value);
    EXPECT_TRUE(ValidatePacking(g, k, g.num_nodes(), trees));
  }
}

TEST(Steiner, PlanIntersectionPrefersParallelismOnClique) {
  // N/ST + Δ: on the 4-clique with N=1000, Δ=3 with 2 trees (500+3) beats
  // Δ=2 with 1 tree (1000+2) — the Example 2.2 → 2.3 improvement.
  Graph g = CliqueTopology(4);
  IntersectionPlan plan = PlanIntersection(g, {0, 1, 2, 3}, 1000);
  EXPECT_GE(plan.trees.size(), 2u);
  EXPECT_LE(plan.predicted_rounds, 1000 / 2 + plan.delta + 1);
}

TEST(Steiner, PlanIntersectionOnLineIsSerial) {
  Graph g = LineTopology(4);
  IntersectionPlan plan = PlanIntersection(g, {0, 1, 2, 3}, 1000);
  EXPECT_EQ(plan.trees.size(), 1u);
  EXPECT_EQ(plan.predicted_rounds, 1000 + 3);
}

// --- Gather planning ----------------------------------------------------------

TEST(Routing, GatherOnLineLimitedByBridge) {
  GatherPlan p = PlanGatherTo(LineTopology(4), {0, 1, 2, 3}, 3, 300);
  EXPECT_EQ(p.flow, 1);
  EXPECT_EQ(p.rounds, 300 + 3);
}

TEST(Routing, GatherOnCliqueUsesParallelEdges) {
  GatherPlan p = PlanGatherTo(CliqueTopology(5), {0, 1, 2, 3, 4}, 0, 400);
  EXPECT_EQ(p.flow, 4);
  EXPECT_EQ(p.rounds, 100 + 1);
}

TEST(Routing, PlanGatherPicksBestTarget) {
  // On a star, the hub is the best sink (flow = #spokes).
  Graph g = StarTopology(5);
  GatherPlan p = PlanGather(g, {0, 1, 2, 3, 4}, 100);
  EXPECT_EQ(p.target, 0);
  EXPECT_EQ(p.flow, 4);
}

class SteinerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SteinerSweep, PackingsAreAlwaysValid) {
  Rng rng(100 + GetParam());
  Graph g = RandomConnectedTopology(8 + GetParam() % 5, 4 + GetParam() % 7, &rng);
  std::vector<NodeId> k;
  for (int i = 0; i < g.num_nodes(); i += 2) k.push_back(i);
  for (int delta = g.DiameterAmong(k); delta <= g.num_nodes(); ++delta) {
    auto trees = PackSteinerTrees(g, k, delta, /*seed=*/GetParam());
    EXPECT_TRUE(ValidatePacking(g, k, delta, trees));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SteinerSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace topofaq
