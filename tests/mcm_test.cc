// MCM tests (Section 6): F2 linear algebra, all three protocols' answers and
// round shapes, and the Eq. (5) FAQ-SS equivalence.
#include <gtest/gtest.h>

#include "faq/solvers.h"
#include "lowerbounds/bounds.h"
#include "mcm/bitmatrix.h"
#include "mcm/protocols.h"

namespace topofaq {
namespace {

McmInstance RandomInstance(int k, int n, uint64_t seed) {
  Rng rng(seed);
  McmInstance inst;
  inst.x = BitVector::Random(n, &rng);
  for (int i = 0; i < k; ++i)
    inst.matrices.push_back(BitMatrix::Random(n, &rng));
  return inst;
}

TEST(BitVector, GetSetAndDot) {
  BitVector v(100);
  v.Set(3, true);
  v.Set(99, true);
  EXPECT_TRUE(v.Get(3));
  EXPECT_FALSE(v.Get(4));
  BitVector w(100);
  w.Set(3, true);
  EXPECT_TRUE(v.Dot(w));   // one common position
  w.Set(99, true);
  EXPECT_FALSE(v.Dot(w));  // two common positions: parity 0
}

TEST(BitVector, RandomMasksTailBits) {
  Rng rng(1);
  BitVector v = BitVector::Random(70, &rng);
  // Bits beyond 70 must be zero in the last word.
  EXPECT_EQ(v.words()[1] >> 6, 0u);
}

TEST(BitMatrix, IdentityActsTrivially) {
  Rng rng(2);
  BitVector x = BitVector::Random(33, &rng);
  EXPECT_EQ(BitMatrix::Identity(33).Apply(x), x);
}

TEST(BitMatrix, MultiplyMatchesComposition) {
  Rng rng(3);
  for (int iter = 0; iter < 10; ++iter) {
    BitMatrix a = BitMatrix::Random(20, &rng);
    BitMatrix b = BitMatrix::Random(20, &rng);
    BitVector x = BitVector::Random(20, &rng);
    EXPECT_EQ(a.Multiply(b).Apply(x), a.Apply(b.Apply(x)));
  }
}

TEST(BitMatrix, RankOfIdentityAndSingular) {
  EXPECT_EQ(BitMatrix::Identity(12).Rank(), 12);
  BitMatrix z(5);
  EXPECT_EQ(z.Rank(), 0);
  BitMatrix m(4);
  m.Set(0, 0, true);
  m.Set(1, 0, true);  // duplicate row
  EXPECT_EQ(m.Rank(), 1);
}

TEST(McmProtocols, AllThreeAgreeWithChainApply) {
  for (auto [k, n] : {std::pair{1, 8}, {3, 8}, {4, 16}, {7, 8}}) {
    McmInstance inst = RandomInstance(k, n, 100 + k);
    const BitVector expected = ChainApply(inst.matrices, inst.x);
    EXPECT_EQ(RunMcmSequential(inst).y, expected);
    EXPECT_EQ(RunMcmMerge(inst).y, expected);
    EXPECT_EQ(RunMcmTrivial(inst).y, expected);
  }
}

TEST(McmProtocols, SequentialRoundsAreLinearInKN) {
  // (k+1) pipelined N-bit hops at 1 bit/round: rounds = (k+1)·N exactly
  // (transfers are sequential: each hop waits for the previous product).
  McmInstance inst = RandomInstance(6, 32, 7);
  McmResult r = RunMcmSequential(inst);
  EXPECT_EQ(r.rounds, 7 * 32);
}

TEST(McmProtocols, MergeRoundsAreQuadraticInN) {
  // ceil(log2 k) iterations of parallel N² transfers.
  McmInstance inst = RandomInstance(8, 16, 8);
  McmResult r = RunMcmMerge(inst);
  EXPECT_GE(r.rounds, 3 * 16 * 16);       // 3 halving iterations
  EXPECT_LE(r.rounds, 3 * 16 * 16 + 200); // + hop lags and x routing
}

TEST(McmProtocols, TrivialRoundsAreCubicish) {
  McmInstance inst = RandomInstance(4, 16, 9);
  McmResult r = RunMcmTrivial(inst);
  // The last edge must carry k·N² + N bits at 1 bit/round.
  EXPECT_GE(r.rounds, 4 * 16 * 16);
}

TEST(McmProtocols, CrossoverAtLargeK) {
  // For k << N sequential wins; the merge protocol's N² log k only pays off
  // once k >> N (Appendix I.1).
  McmInstance small_k = RandomInstance(2, 24, 10);
  EXPECT_LT(RunMcmSequential(small_k).rounds, RunMcmMerge(small_k).rounds);
  McmInstance big_k = RandomInstance(100, 4, 11);
  EXPECT_LT(RunMcmMerge(big_k).rounds, RunMcmSequential(big_k).rounds);
}

TEST(McmProtocols, SequentialIsWithinConstantOfLowerBound) {
  // Theorem 6.4: Ω(kN) rounds; Prop 6.1 protocol is O(kN): ratio bounded.
  for (int k : {2, 4, 8}) {
    McmInstance inst = RandomInstance(k, 16, 20 + k);
    McmResult r = RunMcmSequential(inst);
    McmBounds b = ComputeMcmBounds(k, 16);
    EXPECT_GE(r.rounds, b.lower);
    EXPECT_LE(r.rounds, 4 * b.lower);
  }
}

TEST(McmAsFaq, MatchesChainApply) {
  // Eq. (5): the FAQ-SS formulation over GF(2) computes the same vector.
  for (auto [k, n] : {std::pair{1, 4}, {2, 4}, {3, 6}}) {
    McmInstance inst = RandomInstance(k, n, 300 + k);
    auto q = McmAsFaq(inst);
    ASSERT_TRUE(q.Validate().ok());
    auto res = BruteForceSolve(q);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(DecodeFaqVector(*res, n), ChainApply(inst.matrices, inst.x));
  }
}

TEST(McmAsFaq, ZeroMatrixGivesZeroVector) {
  McmInstance inst;
  Rng rng(12);
  inst.x = BitVector::Random(5, &rng);
  inst.matrices.push_back(BitMatrix(5));  // zero matrix: empty relation
  // An all-zero matrix yields an empty listing; Eq. (5) needs at least one
  // nonzero entry per function, so check the chain answer directly.
  EXPECT_EQ(ChainApply(inst.matrices, inst.x), BitVector(5));
}

TEST(McmBounds, FormulasOrderCorrectly) {
  McmBounds b = ComputeMcmBounds(/*k=*/8, /*n=*/64);
  EXPECT_LT(b.lower, b.sequential + 64);
  EXPECT_LT(b.sequential, b.trivial);   // k <= N regime
  McmBounds big = ComputeMcmBounds(/*k=*/100000, /*n=*/16);
  EXPECT_LT(big.merge, big.sequential);  // k >> N regime
}

class McmSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(McmSweep, ProtocolsAgreeEverywhere) {
  auto [k, n] = GetParam();
  McmInstance inst = RandomInstance(k, n, 1000 + k * 31 + n);
  const BitVector expected = ChainApply(inst.matrices, inst.x);
  McmResult seq = RunMcmSequential(inst);
  McmResult mrg = RunMcmMerge(inst);
  EXPECT_EQ(seq.y, expected);
  EXPECT_EQ(mrg.y, expected);
  EXPECT_GT(seq.rounds, 0);
  EXPECT_GT(mrg.rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, McmSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5, 9),
                                            ::testing::Values(4, 12, 20)));

}  // namespace
}  // namespace topofaq
