// Distributed-protocol integration tests: answers must equal the
// centralized solvers on every topology/assignment, and round counts must
// track the paper's formulas on the canonical instances (Examples 2.1–2.3).
#include <gtest/gtest.h>

#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "protocols/distributed.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using BRel = Relation<BooleanSemiring>;

template <CommutativeSemiring S>
Relation<S> RandomRelation(const std::vector<VarId>& vars, int tuples,
                           uint64_t domain, Rng* rng) {
  Relation<S> r{Schema(vars)};
  for (int i = 0; i < tuples; ++i) {
    std::vector<Value> row;
    for (size_t j = 0; j < vars.size(); ++j) row.push_back(rng->NextU64(domain));
    r.Add(row, S::One());
  }
  r.Canonicalize();
  return r;
}

/// The Example 2.1/2.2 workload: a star query with a planted full
/// intersection on the shared attribute so the protocol must scan all N
/// values.
FaqQuery<BooleanSemiring> StarBcqWorkload(int leaves, int n) {
  Hypergraph h = StarGraph(leaves);
  std::vector<BRel> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    BRel r{Schema(h.edge(e))};
    for (int i = 0; i < n; ++i)
      r.Add({static_cast<Value>(i), static_cast<Value>(1)});
    rels.push_back(std::move(r));
  }
  return MakeBcq(h, std::move(rels));
}

TEST(Trivial, AnswerMatchesCentral) {
  Rng rng(50);
  for (int iter = 0; iter < 10; ++iter) {
    Hypergraph h = RandomAcyclicHypergraph(4, 3, &rng);
    std::vector<BRel> rels;
    for (int e = 0; e < h.num_edges(); ++e)
      rels.push_back(RandomRelation<BooleanSemiring>(h.edge(e), 8, 3, &rng));
    DistInstance<BooleanSemiring> inst;
    inst.query = MakeBcq(h, rels);
    inst.topology = LineTopology(4);
    inst.owners = RoundRobinOwners(h.num_edges(), 4);
    inst.sink = 3;
    auto dist = RunTrivialProtocol(inst);
    auto central = BruteForceSolve(inst.query);
    ASSERT_TRUE(dist.ok() && central.ok());
    EXPECT_TRUE(dist->answer.EqualsAsFunction(*central));
    EXPECT_GT(dist->stats.rounds, 0);
  }
}

TEST(Trivial, NoCommunicationWhenSinkOwnsEverything) {
  Hypergraph h = PathGraph(2);
  Rng rng(51);
  std::vector<BRel> rels{RandomRelation<BooleanSemiring>(h.edge(0), 5, 3, &rng),
                         RandomRelation<BooleanSemiring>(h.edge(1), 5, 3, &rng)};
  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(h, rels);
  inst.topology = LineTopology(3);
  inst.owners = {0, 0};
  inst.sink = 0;
  auto dist = RunTrivialProtocol(inst);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->stats.rounds, 0);
}

TEST(CoreForest, Example21SelfLoopsOnLine) {
  // H0 on G1: four set intersections on a line; the paper's protocol takes
  // N + 2 rounds at 1 value per round. Our channel carries r·log2(D) bits
  // per round = exactly one value, so rounds ≈ N + O(1).
  const int n = 256;
  Hypergraph h = PaperH0();
  std::vector<BRel> rels;
  for (int e = 0; e < 4; ++e) {
    BRel r{Schema(h.edge(e))};
    for (int i = 0; i < n; ++i) r.Add({static_cast<Value>(i)});
    rels.push_back(std::move(r));
  }
  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(h, rels);
  inst.topology = LineTopology(4);
  inst.owners = {0, 1, 2, 3};
  inst.sink = 3;
  ProtocolStats stats;
  auto ans = RunBcqProtocol(inst, &stats);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(*ans);  // full intersection is non-empty
  // Broadcast of the center relation + N-item convergecast: Θ(N) with a
  // small constant (≈ 2N with the broadcast), certainly not the trivial
  // 3N.
  EXPECT_GE(stats.rounds, n);
  EXPECT_LE(stats.rounds, 2 * n + 24);
}

TEST(CoreForest, Example23CliqueBeatsLine) {
  // BCQ of the star H1: on the clique G2 the Steiner packing halves the
  // convergecast (Example 2.3's N/2 + 2 vs Example 2.2's N + 2).
  auto query = StarBcqWorkload(4, 512);
  DistInstance<BooleanSemiring> line, clique;
  line.query = clique.query = query;
  line.topology = LineTopology(4);
  clique.topology = CliqueTopology(4);
  line.owners = clique.owners = {0, 1, 2, 3};
  line.sink = clique.sink = 1;
  ProtocolStats s_line, s_clique;
  auto a1 = RunBcqProtocol(line, &s_line);
  auto a2 = RunBcqProtocol(clique, &s_clique);
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_EQ(*a1, *a2);
  // The convergecast part drops by ~2x; the broadcast part also improves on
  // the clique (distance 1). Demand a solid 1.4x.
  EXPECT_LT(static_cast<double>(s_clique.rounds),
            static_cast<double>(s_line.rounds) / 1.4);
}

TEST(CoreForest, BeatsTrivialOnStarQueries) {
  auto query = StarBcqWorkload(4, 256);
  DistInstance<BooleanSemiring> inst;
  inst.query = query;
  inst.topology = LineTopology(5);
  inst.owners = {0, 1, 2, 3};
  inst.sink = 4;
  auto smart = RunCoreForestProtocol(inst);
  auto trivial = RunTrivialProtocol(inst);
  ASSERT_TRUE(smart.ok() && trivial.ok());
  EXPECT_TRUE(smart->answer.EqualsAsFunction(trivial->answer));
  EXPECT_LT(smart->stats.rounds, trivial->stats.rounds);
}

TEST(CoreForest, EmptyIntersectionIsDetected) {
  Hypergraph h = PaperH0();
  std::vector<BRel> rels;
  for (int e = 0; e < 4; ++e) {
    BRel r{Schema(h.edge(e))};
    // Disjoint supports.
    for (int i = 0; i < 10; ++i) r.Add({static_cast<Value>(100 * e + i)});
    rels.push_back(std::move(r));
  }
  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(h, rels);
  inst.topology = LineTopology(4);
  inst.owners = {0, 1, 2, 3};
  inst.sink = 0;
  auto ans = RunBcqProtocol(inst);
  ASSERT_TRUE(ans.ok());
  EXPECT_FALSE(*ans);
}

TEST(CoreForest, FactorMarginalOnTreeTopology) {
  Rng rng(52);
  Hypergraph h = PaperH2();
  std::vector<Relation<CountingSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<CountingSemiring> r{Schema(h.edge(e))};
    for (int i = 0; i < 10; ++i) {
      std::vector<Value> row;
      for (size_t j = 0; j < h.edge(e).size(); ++j)
        row.push_back(rng.NextU64(3));
      r.Add(row, static_cast<double>(rng.NextU64(5) + 1));
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  DistInstance<CountingSemiring> inst;
  inst.query = MakeFactorMarginal(h, rels, /*marginal_edge=*/0);
  inst.topology = BalancedTreeTopology(2, 2);
  inst.owners = RoundRobinOwners(h.num_edges(), inst.topology.num_nodes());
  inst.sink = 0;
  auto dist = RunCoreForestProtocol(inst);
  auto central = BruteForceSolve(inst.query);
  ASSERT_TRUE(dist.ok() && central.ok());
  EXPECT_TRUE(dist->answer.EqualsAsFunction(*central));
}

struct SweepCase {
  int seed;
  int topo;  // 0 line, 1 clique, 2 grid, 3 ring, 4 random
};

class ProtocolSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Graph MakeTopology(int kind, Rng* rng) {
    switch (kind) {
      case 0:
        return LineTopology(6);
      case 1:
        return CliqueTopology(5);
      case 2:
        return GridTopology(2, 3);
      case 3:
        return RingTopology(6);
      default:
        return RandomConnectedTopology(7, 4, rng);
    }
  }
};

TEST_P(ProtocolSweep, BcqMatchesCentralEverywhere) {
  auto [seed, topo] = GetParam();
  Rng rng(700 + seed);
  Graph g = MakeTopology(topo, &rng);
  Hypergraph h = RandomAcyclicHypergraph(4 + seed % 3, 3, &rng);
  std::vector<BRel> rels;
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(RandomRelation<BooleanSemiring>(h.edge(e), 8, 3, &rng));
  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(h, rels);
  inst.topology = g;
  inst.owners = RoundRobinOwners(h.num_edges(), g.num_nodes());
  inst.sink = g.num_nodes() - 1;
  auto dist = RunCoreForestProtocol(inst);
  auto central = BruteForceSolve(inst.query);
  ASSERT_TRUE(dist.ok() && central.ok());
  EXPECT_TRUE(dist->answer.EqualsAsFunction(*central)) << h.DebugString();
}

TEST_P(ProtocolSweep, CountingFaqMatchesCentralEverywhere) {
  auto [seed, topo] = GetParam();
  Rng rng(900 + seed);
  Graph g = MakeTopology(topo, &rng);
  Hypergraph h = RandomAcyclicHypergraph(4, 3, &rng);
  std::vector<Relation<NaturalSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    Relation<NaturalSemiring> r{Schema(h.edge(e))};
    for (int i = 0; i < 8; ++i) {
      std::vector<Value> row;
      for (size_t j = 0; j < h.edge(e).size(); ++j)
        row.push_back(rng.NextU64(3));
      r.Add(row, rng.NextU64(4) + 1);
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  DistInstance<NaturalSemiring> inst;
  inst.query = MakeFaqSS<NaturalSemiring>(h, rels, {});
  inst.topology = g;
  inst.owners = RoundRobinOwners(h.num_edges(), g.num_nodes());
  inst.sink = 0;
  auto dist = RunCoreForestProtocol(inst);
  auto central = BruteForceSolve(inst.query);
  ASSERT_TRUE(dist.ok() && central.ok());
  EXPECT_TRUE(dist->answer.EqualsAsFunction(*central)) << h.DebugString();
}

TEST_P(ProtocolSweep, CyclicQueriesMatchCentral) {
  auto [seed, topo] = GetParam();
  Rng rng(1100 + seed);
  Graph g = MakeTopology(topo, &rng);
  Hypergraph h = (seed % 2 == 0) ? CycleGraph(4) : PaperH3();
  std::vector<BRel> rels;
  for (int e = 0; e < h.num_edges(); ++e)
    rels.push_back(RandomRelation<BooleanSemiring>(h.edge(e), 6, 3, &rng));
  DistInstance<BooleanSemiring> inst;
  inst.query = MakeBcq(h, rels);
  inst.topology = g;
  inst.owners = RoundRobinOwners(h.num_edges(), g.num_nodes());
  inst.sink = 0;
  auto dist = RunCoreForestProtocol(inst);
  auto central = BruteForceSolve(inst.query);
  ASSERT_TRUE(dist.ok() && central.ok());
  EXPECT_TRUE(dist->answer.EqualsAsFunction(*central)) << h.DebugString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 5)));

TEST(CoreForest, AllRelationsOnOnePlayerStillWorks) {
  // |K| < k: several functions on one node (exploited by the lower bounds).
  auto query = StarBcqWorkload(4, 64);
  DistInstance<BooleanSemiring> inst;
  inst.query = query;
  inst.topology = LineTopology(4);
  inst.owners = {1, 1, 2, 2};
  inst.sink = 3;
  ProtocolStats stats;
  auto ans = RunBcqProtocol(inst, &stats);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(*ans);
}

TEST(CoreForest, StatsAccumulateBits) {
  auto query = StarBcqWorkload(3, 128);
  DistInstance<BooleanSemiring> inst;
  inst.query = query;
  inst.topology = LineTopology(4);
  inst.owners = {0, 1, 2};
  inst.sink = 3;
  auto res = RunCoreForestProtocol(inst);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->stats.total_bits, 128);
  EXPECT_GT(res->stats.rounds, 0);
}

}  // namespace
}  // namespace topofaq
