// Relation algebra unit + property tests: differential testing of the
// sort-merge kernel against a naive nested-loop reference and against the
// retained hash-based reference operators (reference_ops.h) on random inputs
// across several semirings, plus RelationBuilder / canonical-invariant
// coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>

#include "bit_identity.h"
#include "random_instances.h"
#include "relation/encoding.h"
#include "relation/exec.h"
#include "relation/ops.h"
#include "relation/parallel.h"
#include "relation/reference_ops.h"
#include "relation/relation.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using BRel = Relation<BooleanSemiring>;
using NRel = Relation<NaturalSemiring>;
using CRel = Relation<CountingSemiring>;

TEST(Schema, PositionsAndContains) {
  Schema s({5, 2, 9});
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.PositionOf(5), 0);
  EXPECT_EQ(s.PositionOf(2), 1);
  EXPECT_EQ(s.PositionOf(9), 2);
  EXPECT_EQ(s.PositionOf(7), -1);
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(0));
}

TEST(Schema, SharedVarsInLeftOrder) {
  Schema a({1, 2, 3}), b({3, 1, 7});
  EXPECT_EQ(a.SharedWith(b), (std::vector<VarId>{1, 3}));
  EXPECT_EQ(b.SharedWith(a), (std::vector<VarId>{3, 1}));
}

TEST(Relation, AddDropsZeros) {
  NRel r{Schema({0})};
  r.Add({1}, 0);  // zero annotation: not stored
  r.Add({2}, 5);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, CanonicalizeMergesDuplicates) {
  NRel r{Schema({0, 1})};
  r.Add({1, 2}, 3);
  r.Add({0, 0}, 1);
  r.Add({1, 2}, 4);
  r.Canonicalize();
  ASSERT_EQ(r.size(), 2u);
  // Sorted lexicographically.
  EXPECT_EQ(r.at(0, 0), 0u);
  EXPECT_EQ(r.annot(0), 1u);
  EXPECT_EQ(r.at(1, 0), 1u);
  EXPECT_EQ(r.annot(1), 7u);
}

TEST(Relation, CanonicalizeMergesAllZeroToEmpty) {
  // Every tuple's annotations cancel: the canonical form is the empty
  // relation (the listing representation of the zero function).
  Relation<Gf2Semiring> r{Schema({0, 1})};
  r.Add({1, 2}, 1);
  r.Add({3, 4}, 1);
  r.Add({1, 2}, 1);
  r.Add({3, 4}, 1);
  r.Canonicalize();
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.canonical());
}

TEST(Relation, CanonicalFlagTracksInvariant) {
  NRel r{Schema({0})};
  EXPECT_TRUE(r.canonical());  // empty is trivially canonical
  r.Add({2}, 1);
  EXPECT_FALSE(r.canonical());
  r.Canonicalize();
  EXPECT_TRUE(r.canonical());
}

TEST(Relation, SetAnnotToZeroClearsCanonicalFlag) {
  NRel r{Schema({0})};
  r.Add({1}, 2);
  r.Add({2}, 3);
  r.Canonicalize();
  r.set_annot(0, 7);  // nonzero overwrite keeps the invariant
  EXPECT_TRUE(r.canonical());
  r.set_annot(0, 0);  // zero row: invariant broken, flag must drop
  EXPECT_FALSE(r.canonical());
  // Compact re-certifies in one pass: rows stayed sorted and distinct, so
  // no sort is needed, only the zero row drops.
  r.Compact();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.at(0, 0), 2u);
}

TEST(Relation, CompactDropsEveryZeroedRowAndKeepsOrder) {
  NRel r{Schema({0, 1})};
  for (Value v = 0; v < 10; ++v) r.Add({v, v + 100}, v + 1);
  r.Canonicalize();
  r.set_annot(2, 0);
  r.set_annot(7, 0);
  EXPECT_FALSE(r.canonical());
  r.Compact();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 8u);
  // Survivors keep relative order and values.
  NRel expect{Schema({0, 1})};
  for (Value v = 0; v < 10; ++v)
    if (v != 2 && v != 7) expect.Add({v, v + 100}, v + 1);
  expect.Canonicalize();
  EXPECT_TRUE(r.EqualsAsFunction(expect));
}

TEST(Relation, CompactFallsBackToCanonicalizeWhenUnsorted) {
  NRel r{Schema({0})};
  r.Add({5}, 1);
  r.Add({3}, 2);  // out of order: Compact must sort, not just drop zeros
  r.Compact();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0, 0), 3u);
  EXPECT_EQ(r.at(1, 0), 5u);
}

TEST(SchemaIndex, MatchesLinearLookup) {
  Schema s({9, 4, 17, 2});
  SchemaIndex idx(s);
  for (VarId v : {0u, 2u, 4u, 9u, 17u, 20u})
    EXPECT_EQ(idx.PositionOf(v), s.PositionOf(v)) << v;
  EXPECT_TRUE(idx.Contains(17));
  EXPECT_FALSE(idx.Contains(5));
}

TEST(RelationBuilder, SortedAppendsSkipTheSort) {
  RelationBuilder<NaturalSemiring> b{Schema({0, 1})};
  b.Append({1, 5}, 2);
  b.Append({1, 5}, 3);  // equal: merged with Add
  b.Append({2, 0}, 7);
  NRel r = b.Build();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.annot(0), 5u);
  EXPECT_EQ(r.annot(1), 7u);
}

TEST(RelationBuilder, UnsortedAppendsFallBackToCanonicalize) {
  RelationBuilder<NaturalSemiring> b{Schema({0})};
  b.Append({9}, 1);
  b.Append({3}, 2);
  b.Append({9}, 4);
  NRel r = b.Build();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0, 0), 3u);
  EXPECT_EQ(r.annot(1), 5u);
}

TEST(RelationBuilder, CancellationDropsRowsOnSortedPath) {
  RelationBuilder<Gf2Semiring> b{Schema({0})};
  b.Append({1}, 1);
  b.Append({1}, 1);  // cancels to 0
  b.Append({2}, 1);
  Relation<Gf2Semiring> r = b.Build();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.at(0, 0), 2u);
}

TEST(RelationBuilder, AppendChunkSplicesSortedPages) {
  // The streaming-sink path: sorted distinct column chunks splice with one
  // boundary compare; an equal boundary row merges with ⊕ (Append's rule).
  RelationBuilder<NaturalSemiring> b{Schema({0, 1})};
  b.AppendChunk({{1, 2}, {5, 0}}, std::vector<uint64_t>{2, 7});
  b.AppendChunk({{2, 3}, {0, 9}}, std::vector<uint64_t>{4, 1});  // merges (2,0)
  b.AppendChunk({{}, {}}, std::span<const uint64_t>{});          // empty page
  NRel r = b.Build();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.annot(0), 2u);
  EXPECT_EQ(r.annot(1), 11u);  // 7 ⊕ 4
  EXPECT_EQ(r.annot(2), 1u);
}

TEST(RelationBuilder, AppendChunkOutOfOrderFallsBackToCanonicalize) {
  RelationBuilder<NaturalSemiring> b{Schema({0})};
  b.AppendChunk({{7, 9}}, std::vector<uint64_t>{1, 2});
  b.AppendChunk({{3}}, std::vector<uint64_t>{5});  // below the stored rows
  NRel r = b.Build();
  EXPECT_TRUE(r.canonical());
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.at(0, 0), 3u);
  EXPECT_EQ(r.annot(0), 5u);
}

TEST(Relation, CanonicalizeDropsCancellingPairsInGf2) {
  Relation<Gf2Semiring> r{Schema({0})};
  r.Add({4}, 1);
  r.Add({4}, 1);  // 1 XOR 1 = 0: tuple vanishes
  r.Add({5}, 1);
  r.Canonicalize();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.at(0, 0), 5u);
}

TEST(Relation, EqualsAsFunctionIgnoresOrder) {
  NRel a{Schema({0})}, b{Schema({0})};
  a.Add({1}, 2);
  a.Add({2}, 3);
  b.Add({2}, 3);
  b.Add({1}, 1);
  b.Add({1}, 1);
  EXPECT_TRUE(a.EqualsAsFunction(b));
}

TEST(Relation, EncodedBitsMatchesFormula) {
  BRel r{Schema({0, 1})};
  r.Add({1, 2});
  r.Add({3, 4});
  // 2 tuples * (2 attrs * 10 bits + 1 annotation bit).
  EXPECT_EQ(r.EncodedBits(10), 2 * (2 * 10 + 1));
}

TEST(Join, SimpleTwoWay) {
  BRel r{Schema({0, 1})};  // R(A,B)
  r.Add({1, 10});
  r.Add({2, 20});
  BRel s{Schema({1, 2})};  // S(B,C)
  s.Add({10, 100});
  s.Add({10, 101});
  s.Add({30, 300});
  BRel j = Join(r, s);
  EXPECT_EQ(j.schema().vars(), (std::vector<VarId>{0, 1, 2}));
  ASSERT_EQ(j.size(), 2u);  // (1,10,100), (1,10,101)
  EXPECT_EQ(j.at(0, 0), 1u);
  EXPECT_EQ(j.at(1, 2), 101u);
}

TEST(Join, AnnotationsMultiply) {
  NRel r{Schema({0})};
  r.Add({7}, 3);
  NRel s{Schema({0})};
  s.Add({7}, 5);
  NRel j = Join(r, s);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.annot(0), 15u);
}

TEST(Join, DisjointSchemasGiveCrossProduct) {
  BRel r{Schema({0})};
  r.Add({1});
  r.Add({2});
  BRel s{Schema({1})};
  s.Add({8});
  s.Add({9});
  s.Add({10});
  EXPECT_EQ(Join(r, s).size(), 6u);
}

TEST(Join, EmptyInputGivesEmptyOutput) {
  BRel r{Schema({0})};
  BRel s{Schema({0})};
  s.Add({1});
  EXPECT_TRUE(Join(r, s).empty());
  EXPECT_TRUE(Join(s, r).empty());
}

TEST(Semijoin, KeepsMatchingLeftTuplesUnchanged) {
  NRel r{Schema({0, 1})};
  r.Add({1, 10}, 2);
  r.Add({2, 20}, 3);
  r.Add({3, 30}, 4);
  NRel s{Schema({1, 2})};
  s.Add({10, 5}, 9);
  s.Add({30, 6}, 9);
  NRel out = Semijoin(r, s);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.annot(0), 2u);  // left annotation preserved
  EXPECT_EQ(out.at(1, 0), 3u);
}

TEST(Semijoin, MatchesJoinProjectForBoolean) {
  // Definition 3.5: R1 ⋉ R2 = R1 ⋈ π_shared(R2); over the Boolean semiring
  // the two agree exactly.
  Rng rng(42);
  for (int iter = 0; iter < 20; ++iter) {
    BRel r{Schema({0, 1})}, s{Schema({1, 2})};
    for (int i = 0; i < 15; ++i)
      r.Add({rng.NextU64(4), rng.NextU64(4)});
    for (int i = 0; i < 15; ++i)
      s.Add({rng.NextU64(4), rng.NextU64(4)});
    r.Canonicalize();
    s.Canonicalize();
    BRel via_def = Join(r, Project(s, {1}));
    EXPECT_TRUE(Semijoin(r, s).EqualsAsFunction(via_def));
  }
}

TEST(Project, SumsAnnotations) {
  NRel r{Schema({0, 1})};
  r.Add({1, 10}, 2);
  r.Add({1, 11}, 3);
  r.Add({2, 10}, 5);
  NRel p = Project(r, {0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.annot(0), 5u);  // tuple (1)
  EXPECT_EQ(p.annot(1), 5u);  // tuple (2)
}

TEST(Project, ToEmptySchemaGivesGrandTotal) {
  NRel r{Schema({0})};
  r.Add({1}, 2);
  r.Add({2}, 3);
  NRel p = Project(r, {});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.annot(0), 5u);
}

TEST(EliminateVar, MaxAggregate) {
  CRel r{Schema({0, 1})};
  r.Add({1, 10}, 2.0);
  r.Add({1, 11}, 7.0);
  r.Add({2, 12}, 4.0);
  CRel out = EliminateVar(r, 1, VarOp::kMax);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.annot(0), 7.0);
  EXPECT_EQ(out.annot(1), 4.0);
}

TEST(EliminateVar, ProductAggregate) {
  CRel r{Schema({0, 1})};
  r.Add({1, 10}, 2.0);
  r.Add({1, 11}, 7.0);
  CRel out = EliminateVar(r, 1, VarOp::kProduct);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.annot(0), 14.0);
}

TEST(EliminateVar, SumEqualsProject) {
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    NRel r{Schema({0, 1, 2})};
    for (int i = 0; i < 30; ++i)
      r.Add({rng.NextU64(3), rng.NextU64(3), rng.NextU64(3)},
            rng.NextU64(5) + 1);
    r.Canonicalize();
    NRel a = EliminateVar(r, 1, VarOp::kSemiringSum);
    NRel b = Project(r, {0, 2});
    EXPECT_TRUE(a.EqualsAsFunction(b));
  }
}

TEST(Intersect, SameSchemaIntersection) {
  BRel a{Schema({0})}, b{Schema({0})};
  a.Add({1});
  a.Add({2});
  a.Add({3});
  b.Add({2});
  b.Add({3});
  b.Add({4});
  BRel c = Intersect(a, b);
  EXPECT_EQ(c.size(), 2u);
}

TEST(FullRelation, EnumeratesDomainPower) {
  auto r = FullRelation<BooleanSemiring>(Schema({0, 1}), 3);
  EXPECT_EQ(r.size(), 9u);
  auto r1 = FullRelation<BooleanSemiring>(Schema({0}), 5);
  EXPECT_EQ(r1.size(), 5u);
}

// --- Differential property tests against a naive reference ---------------

NRel NaiveJoin(const NRel& a, const NRel& b) {
  std::vector<VarId> out_vars = a.schema().vars();
  for (VarId v : b.schema().vars())
    if (!a.schema().Contains(v)) out_vars.push_back(v);
  NRel out{Schema(out_vars)};
  for (size_t i = 0; i < a.size(); ++i)
    for (size_t j = 0; j < b.size(); ++j) {
      bool match = true;
      for (VarId v : a.schema().SharedWith(b.schema()))
        if (a.at(i, a.schema().PositionOf(v)) !=
            b.at(j, b.schema().PositionOf(v)))
          match = false;
      if (!match) continue;
      std::vector<Value> row = a.Row(i);
      for (VarId v : out_vars)
        if (!a.schema().Contains(v))
          row.push_back(b.at(j, b.schema().PositionOf(v)));
      out.Add(row, a.annot(i) * b.annot(j));
    }
  out.Canonicalize();
  return out;
}

class JoinProperty : public ::testing::TestWithParam<int> {};

TEST_P(JoinProperty, HashJoinMatchesNestedLoop) {
  Rng rng(1000 + GetParam());
  // Random schemas over variables {0..4} with guaranteed overlap patterns.
  auto random_rel = [&](std::vector<VarId> vars, int tuples) {
    NRel r{Schema(std::move(vars))};
    for (int i = 0; i < tuples; ++i) {
      std::vector<Value> row;
      for (size_t k = 0; k < r.arity(); ++k) row.push_back(rng.NextU64(3));
      r.Add(row, rng.NextU64(4) + 1);
    }
    r.Canonicalize();
    return r;
  };
  std::vector<std::vector<VarId>> schemas = {
      {0, 1}, {1, 2}, {0, 2}, {2, 3, 4}, {0}, {1, 3}};
  NRel a = random_rel(schemas[GetParam() % schemas.size()], 20);
  NRel b = random_rel(schemas[(GetParam() + 1) % schemas.size()], 20);
  EXPECT_TRUE(Join(a, b).EqualsAsFunction(NaiveJoin(a, b)));
}

TEST_P(JoinProperty, JoinIsCommutativeAsFunction) {
  Rng rng(2000 + GetParam());
  NRel a{Schema({0, 1})}, b{Schema({1, 2})};
  for (int i = 0; i < 25; ++i) {
    a.Add({rng.NextU64(3), rng.NextU64(3)}, rng.NextU64(4) + 1);
    b.Add({rng.NextU64(3), rng.NextU64(3)}, rng.NextU64(4) + 1);
  }
  a.Canonicalize();
  b.Canonicalize();
  NRel ab = Join(a, b);
  NRel ba = Project(Join(b, a), ab.schema().vars());
  EXPECT_TRUE(ab.EqualsAsFunction(ba));
}

TEST_P(JoinProperty, ProjectionCommutesWithUnionOfAdds) {
  // sum over all tuples is invariant under projection order.
  Rng rng(3000 + GetParam());
  NRel a{Schema({0, 1, 2})};
  for (int i = 0; i < 40; ++i)
    a.Add({rng.NextU64(3), rng.NextU64(3), rng.NextU64(3)},
          rng.NextU64(9) + 1);
  a.Canonicalize();
  NRel p1 = Project(Project(a, {0, 1}), {0});
  NRel p2 = Project(Project(a, {0, 2}), {0});
  EXPECT_TRUE(p1.EqualsAsFunction(p2));
  NRel total1 = Project(p1, {});
  NRel total2 = Project(a, {});
  EXPECT_TRUE(total1.EqualsAsFunction(total2));
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinProperty, ::testing::Range(0, 12));

// --- Edge cases around empty and disjoint schemas -------------------------

TEST(Join, WithUnitRelationScalesAnnotations) {
  NRel unit{Schema(std::vector<VarId>{})};
  unit.Add(std::initializer_list<Value>{}, 3);
  NRel r{Schema({0})};
  r.Add({1}, 2);
  r.Add({2}, 5);
  r.Canonicalize();
  NRel a = Join(unit, r);
  EXPECT_EQ(a.schema().vars(), (std::vector<VarId>{0}));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.annot(0), 6u);
  EXPECT_EQ(a.annot(1), 15u);
  NRel b = Join(r, unit);
  EXPECT_TRUE(a.EqualsAsFunction(b));
}

TEST(Join, BothEmptySchemasMultiplyScalars) {
  NRel a{Schema(std::vector<VarId>{})}, b{Schema(std::vector<VarId>{})};
  a.Add(std::initializer_list<Value>{}, 4);
  b.Add(std::initializer_list<Value>{}, 6);
  NRel j = Join(a, b);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.arity(), 0u);
  EXPECT_EQ(j.annot(0), 24u);
}

TEST(Join, EmptyRelationWithDisjointSchema) {
  NRel a{Schema({0})};  // empty
  NRel b{Schema({1})};
  b.Add({5}, 1);
  EXPECT_TRUE(Join(a, b).empty());
  EXPECT_TRUE(Join(b, a).empty());
  EXPECT_EQ(Join(a, b).schema().vars(), (std::vector<VarId>{0, 1}));
}

TEST(Semijoin, NoSharedVariables) {
  // With no shared variables every left row matches iff right is non-empty.
  NRel l{Schema({0})};
  l.Add({1}, 2);
  l.Add({2}, 3);
  l.Canonicalize();
  NRel r{Schema({1})};
  EXPECT_TRUE(Semijoin(l, r).empty());
  r.Add({7}, 1);
  EXPECT_TRUE(Semijoin(l, r).EqualsAsFunction(l));
}

// --- Per-variable aggregates: Max/Min vs the semiring ⊕ -------------------

TEST(EliminateVar, MinAggregateDiffersFromSum) {
  CRel r{Schema({0, 1})};
  r.Add({1, 10}, 2.0);
  r.Add({1, 11}, 7.0);
  r.Canonicalize();
  CRel mn = EliminateVar(r, 1, VarOp::kMin);
  ASSERT_EQ(mn.size(), 1u);
  EXPECT_EQ(mn.annot(0), 2.0);
  CRel sum = EliminateVar(r, 1, VarOp::kSemiringSum);
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_EQ(sum.annot(0), 9.0);
  CRel mx = EliminateVar(r, 1, VarOp::kMax);
  ASSERT_EQ(mx.size(), 1u);
  EXPECT_EQ(mx.annot(0), 7.0);
}

TEST(Eliminate, IgnoresVariablesOutsideSchema) {
  NRel r{Schema({0, 1})};
  r.Add({1, 2}, 3);
  r.Canonicalize();
  NRel out = Eliminate(r, {1, 9}, {VarOp::kSemiringSum, VarOp::kSemiringSum});
  EXPECT_EQ(out.schema().vars(), (std::vector<VarId>{0}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.annot(0), 3u);
}

// --- Differential cross-checks against the retained reference kernel -----

template <CommutativeSemiring S, typename AnnotFn>
Relation<S> RandomRel(Rng* rng, std::vector<VarId> vars, int tuples,
                      uint64_t dom, AnnotFn annot) {
  Relation<S> r{Schema(std::move(vars))};
  std::vector<Value> row;
  for (int i = 0; i < tuples; ++i) {
    row.clear();
    for (size_t k = 0; k < r.arity(); ++k) row.push_back(rng->NextU64(dom));
    r.Add(row, annot(rng));
  }
  r.Canonicalize();
  return r;
}

/// Checks kernel == reference for Join/Semijoin/Project/Eliminate on random
/// inputs over semiring S (randomized schemas with overlapping, disjoint,
/// and identical variable sets).
template <CommutativeSemiring S, typename AnnotFn>
void CrossCheckAgainstReference(uint64_t seed, AnnotFn annot) {
  Rng rng(seed);
  const std::vector<std::vector<VarId>> schemas = {
      {0, 1}, {1, 2}, {0, 2}, {2, 3, 4}, {0, 1}, {3}, {0, 1, 2}};
  for (int iter = 0; iter < 30; ++iter) {
    auto a = RandomRel<S>(&rng, schemas[iter % schemas.size()], 25, 4, annot);
    auto b = RandomRel<S>(&rng, schemas[(iter + 1) % schemas.size()], 25, 4,
                          annot);
    EXPECT_TRUE(Join(a, b).EqualsAsFunction(reference::Join(a, b)))
        << "join iter " << iter;
    EXPECT_TRUE(Semijoin(a, b).EqualsAsFunction(reference::Semijoin(a, b)))
        << "semijoin iter " << iter;
    // Project onto a random (possibly reordered) subset of a's schema.
    std::vector<VarId> keep = a.schema().vars();
    rng.Shuffle(&keep);
    keep.resize(rng.NextU64(keep.size() + 1));
    EXPECT_TRUE(Project(a, keep).EqualsAsFunction(reference::Project(a, keep)))
        << "project iter " << iter;
    const VarId ev = a.schema().var(rng.NextU64(a.arity()));
    for (VarOp op : {VarOp::kSemiringSum, VarOp::kMax, VarOp::kMin})
      EXPECT_TRUE(EliminateVar(a, ev, op).EqualsAsFunction(
          reference::EliminateVar(a, ev, op)))
          << "eliminate iter " << iter << " op " << VarOpName(op);
  }
}

TEST(KernelVsReference, NaturalSemiring) {
  CrossCheckAgainstReference<NaturalSemiring>(
      101, [](Rng* r) { return r->NextU64(5) + 1; });
}

TEST(KernelVsReference, Gf2Semiring) {
  CrossCheckAgainstReference<Gf2Semiring>(
      202, [](Rng*) { return static_cast<uint8_t>(1); });
}

TEST(KernelVsReference, MinPlusSemiring) {
  CrossCheckAgainstReference<MinPlusSemiring>(
      303, [](Rng* r) { return static_cast<double>(r->NextU64(9)); });
}

TEST(KernelVsReference, MaxProductSemiring) {
  CrossCheckAgainstReference<MaxProductSemiring>(
      404, [](Rng* r) { return static_cast<double>(r->NextU64(6) + 1); });
}

TEST(Eliminate, BatchedMatchesSequentialSingleVarElimination) {
  // Multi-variable Eliminate with mixed per-variable aggregates must equal
  // eliminating one variable at a time in descending order (the seed-kernel
  // semantics).
  Rng rng(777);
  const std::vector<VarOp> op_pool = {VarOp::kSemiringSum, VarOp::kMax,
                                      VarOp::kMin};
  for (int iter = 0; iter < 40; ++iter) {
    auto r = RandomRel<CountingSemiring>(
        &rng, {0, 1, 2, 3}, 40, 3,
        [](Rng* g) { return static_cast<double>(g->NextU64(7) + 1); });
    std::vector<VarId> vars{1, 2, 3};
    std::vector<VarOp> ops;
    for (size_t i = 0; i < vars.size(); ++i)
      ops.push_back(op_pool[rng.NextU64(op_pool.size())]);

    CRel batched = Eliminate(r, vars, ops);

    // Sequential oracle: descending variable order via the hash reference.
    std::vector<size_t> order{2, 1, 0};  // vars 3, 2, 1
    CRel seq = r;
    for (size_t idx : order)
      seq = reference::EliminateVar(seq, vars[idx], ops[idx]);
    EXPECT_TRUE(batched.EqualsAsFunction(seq)) << "iter " << iter;
  }
}

TEST(KernelOps, NonCanonicalInputsStillAgreeWithReference) {
  // Operators accept non-canonical inputs (duplicates unmerged); the builder
  // fallback must keep results identical to the reference kernel.
  Rng rng(555);
  for (int iter = 0; iter < 20; ++iter) {
    NRel a{Schema({0, 1})}, b{Schema({1, 2})};
    for (int i = 0; i < 20; ++i) {
      a.Add({rng.NextU64(3), rng.NextU64(3)}, rng.NextU64(4) + 1);
      b.Add({rng.NextU64(3), rng.NextU64(3)}, rng.NextU64(4) + 1);
    }
    ASSERT_FALSE(a.canonical());
    EXPECT_TRUE(Join(a, b).EqualsAsFunction(reference::Join(a, b)));
    EXPECT_TRUE(Semijoin(a, b).EqualsAsFunction(reference::Semijoin(a, b)));
    EXPECT_TRUE(
        Project(a, {1}).EqualsAsFunction(reference::Project(a, {1})));
  }
}

// --- Columnar storage: round-trip, views, ConcatPieces ---------------------

TEST(Columnar, RoundTripMaterializeRowsMatchesColumns) {
  NRel r{Schema({3, 1, 7})};
  Rng rng(11);
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 50; ++i) {
    std::vector<Value> row{rng.NextU64(6), rng.NextU64(6), rng.NextU64(6)};
    r.Add(row, rng.NextU64(4) + 1);
    rows.push_back(row);
  }
  r.Canonicalize();
  // Columns are parallel, same length, and agree with every row accessor.
  ASSERT_EQ(r.columns().size(), 3u);
  for (const auto& c : r.columns()) ASSERT_EQ(c.size(), r.size());
  const std::vector<Value> flat = r.MaterializeRows();
  ASSERT_EQ(flat.size(), r.size() * r.arity());
  for (size_t i = 0; i < r.size(); ++i) {
    const std::vector<Value> row = r.Row(i);
    for (size_t j = 0; j < r.arity(); ++j) {
      EXPECT_EQ(row[j], r.at(i, j));
      EXPECT_EQ(row[j], r.col(j)[i]);
      EXPECT_EQ(row[j], flat[i * r.arity() + j]);
    }
  }
  // Rebuilding from the materialized rows reproduces the same function.
  NRel back{Schema({3, 1, 7})};
  for (size_t i = 0; i < r.size(); ++i)
    back.Add(std::span<const Value>(flat.data() + i * 3, 3), r.annot(i));
  EXPECT_TRUE(back.EqualsAsFunction(r));
}

TEST(Columnar, RowCursorGathersSelectedColumns) {
  NRel r{Schema({0, 1, 2})};
  r.Add({1, 2, 3}, 1);
  r.Add({4, 5, 6}, 2);
  r.Canonicalize();
  RowCursor cur(r, std::vector<int>{2, 0});
  ASSERT_EQ(cur.width(), 2u);
  EXPECT_EQ(cur.at(1, 0), 6u);
  EXPECT_EQ(cur.at(1, 1), 4u);
  Value out[2];
  cur.Gather(0, out);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 1u);
}

TEST(Columnar, ReorderColumnsKeepsTheFunction) {
  NRel r{Schema({4, 2})};
  r.Add({10, 20}, 3);
  r.Add({11, 21}, 5);
  r.Canonicalize();
  NRel permuted = r;
  permuted.ReorderColumns(Schema({2, 4}), {1, 0});
  EXPECT_FALSE(permuted.canonical());
  permuted.Canonicalize();
  ASSERT_EQ(permuted.size(), 2u);
  EXPECT_EQ(permuted.at(0, 0), 20u);
  EXPECT_EQ(permuted.at(0, 1), 10u);
  EXPECT_EQ(permuted.annot(0), 3u);
}

TEST(ConcatPieces, SplicesSortedPiecesWithBoundaryMerge) {
  // Three canonical pieces in key order; the last row of piece 0 equals the
  // first row of piece 1, so the boundary rows must merge with ⊕.
  RelationBuilder<NaturalSemiring> b0{Schema({0})}, b1{Schema({0})},
      b2{Schema({0})};
  b0.Append({1}, 2);
  b0.Append({5}, 3);
  b1.Append({5}, 4);
  b1.Append({9}, 1);
  b2.Append({12}, 7);
  std::vector<NRel> pieces;
  pieces.push_back(b0.Build());
  pieces.push_back(b1.Build());
  pieces.push_back(b2.Build());
  NRel out = NRel::ConcatPieces(Schema({0}), std::move(pieces));
  EXPECT_TRUE(out.canonical());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.at(1, 0), 5u);
  EXPECT_EQ(out.annot(1), 7u);  // 3 ⊕ 4 merged across the boundary
}

TEST(ConcatPieces, BoundaryMergeToZeroDropsTheRow) {
  RelationBuilder<Gf2Semiring> b0{Schema({0})}, b1{Schema({0})};
  b0.Append({1}, 1);
  b0.Append({4}, 1);
  b1.Append({4}, 1);  // cancels the boundary row: 1 XOR 1 = 0
  b1.Append({6}, 1);
  std::vector<Relation<Gf2Semiring>> pieces;
  pieces.push_back(b0.Build());
  pieces.push_back(b1.Build());
  auto out = Relation<Gf2Semiring>::ConcatPieces(Schema({0}),
                                                 std::move(pieces));
  EXPECT_TRUE(out.canonical());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.at(1, 0), 6u);
}

TEST(ConcatPieces, OutOfOrderPiecesFallBackToCanonicalize) {
  RelationBuilder<NaturalSemiring> b0{Schema({0})}, b1{Schema({0})};
  b0.Append({8}, 1);
  b1.Append({2}, 1);  // starts below piece 0's last key
  std::vector<NRel> pieces;
  pieces.push_back(b0.Build());
  pieces.push_back(b1.Build());
  NRel out = NRel::ConcatPieces(Schema({0}), std::move(pieces));
  EXPECT_TRUE(out.canonical());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.at(0, 0), 2u);
  EXPECT_EQ(out.at(1, 0), 8u);
}

// --- Delta workloads: Compact / ConcatPieces under repeated updates --------
//
// The IVM base-update path (ivm/delta.h) leans on exactly two storage
// operations: set_annot-to-zero + Compact (deletes) and sorted splices with
// boundary ⊕ (inserts). These tests pin those operations under *repeated*
// application — interleaved zero runs, boundary rows whose annotations split
// or cancel, and encoded columns where every mutation must decode first.

TEST(DeltaWorkload, RepeatedZeroRunCompactionMatchesRebuild) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  const uint64_t seed = 881;
  NRel r = RandomRelation<NaturalSemiring>({0, 1}, 5000, 48, seed, 2);
  for (int round = 0; round < 6 && r.size() > 100; ++round) {
    SCOPED_TRACE(InstanceLabel("round " + std::to_string(round), seed));
    // Zero interleaved runs of rows — what a delete delta leaves behind —
    // including the very first and very last row of the relation.
    const size_t run = 7 + static_cast<size_t>(round);
    const size_t last = r.size() - 1;
    auto dropped = [&](size_t i) {
      return (i / run) % 3 == static_cast<size_t>(round) % 3 || i == 0 ||
             i == last;
    };
    NRel expect{r.schema()};
    std::vector<Value> row(r.arity());
    for (size_t i = 0; i < r.size(); ++i) {
      if (dropped(i)) continue;
      for (size_t j = 0; j < row.size(); ++j) row[j] = r.at(i, j);
      expect.Add(row, r.annot(i));
    }
    expect.Canonicalize();
    for (size_t i = 0; i < r.size(); ++i)
      if (dropped(i)) r.set_annot(i, 0);
    r.Compact();
    EXPECT_TRUE(r.canonical());
    EXPECT_TRUE(BytesEqual(r, expect));
  }
}

TEST(DeltaWorkload, CompactOnEncodedColumnsDecodesFirst) {
  // The mutator-decodes-first contract under repeated delta application:
  // set_annot on dict/FOR-encoded storage must drop to plain values before
  // writing, and Compact re-encodes — every round, bytes must match the
  // all-plain twin.
  const uint64_t seed = 883;
  for (EncodingMode m : {EncodingMode::kForceDict, EncodingMode::kForceFor}) {
    SCOPED_TRACE("mode " + std::to_string(static_cast<int>(m)));
    NRel oracle, enc;
    {
      ScopedEncodingMode scope(EncodingMode::kPlain);
      oracle = RandomRelation<NaturalSemiring>({0, 1}, 4000, 64, seed, 1);
    }
    {
      ScopedEncodingMode scope(m);
      enc = RandomRelation<NaturalSemiring>({0, 1}, 4000, 64, seed, 1);
      ASSERT_TRUE(enc.any_encoded());
    }
    for (int round = 0; round < 4; ++round) {
      SCOPED_TRACE(InstanceLabel("round " + std::to_string(round), seed));
      ASSERT_EQ(enc.size(), oracle.size());
      auto dropped = [&](size_t i) {
        return i % 5 == static_cast<size_t>(round) % 5;
      };
      {
        ScopedEncodingMode scope(EncodingMode::kPlain);
        for (size_t i = 0; i < oracle.size(); ++i)
          if (dropped(i)) oracle.set_annot(i, 0);
        oracle.Compact();
      }
      {
        ScopedEncodingMode scope(m);
        for (size_t i = 0; i < enc.size(); ++i)
          if (dropped(i)) enc.set_annot(i, 0);
        enc.Compact();
        EXPECT_TRUE(enc.any_encoded());  // forced modes re-encode
      }
      EXPECT_TRUE(enc.canonical());
      EXPECT_TRUE(BytesEqual(enc, oracle));  // BytesEqual decodes
    }
  }
}

/// Cuts `base` into key-ordered pieces at `cuts` (row indexes), splitting
/// each cut row's annotation across the two adjacent pieces when it can be
/// split into two nonzero halves (a delta splice's boundary shape).
std::vector<NRel> SplitWithBoundaryOverlap(const NRel& base,
                                           const std::vector<size_t>& cuts) {
  std::vector<NRel> pieces;
  std::vector<Value> row(base.arity());
  size_t begin = 0;
  for (size_t c = 0; c <= cuts.size(); ++c) {
    const size_t end = c < cuts.size() ? cuts[c] : base.size();
    RelationBuilder<NaturalSemiring> b{base.schema()};
    size_t i = begin;
    if (c > 0 && begin > 0 && base.annot(begin - 1) >= 2) {
      // The previous piece kept annot-1 of the cut row; this piece opens
      // with the remaining 1, so the splice's boundary ⊕ reassembles it.
      for (size_t j = 0; j < row.size(); ++j) row[j] = base.at(begin - 1, j);
      b.Append(row, 1);
    }
    for (; i < end; ++i) {
      for (size_t j = 0; j < row.size(); ++j) row[j] = base.at(i, j);
      const bool split_here =
          c < cuts.size() && i == end - 1 && base.annot(i) >= 2;
      b.Append(row, split_here ? base.annot(i) - 1 : base.annot(i));
    }
    pieces.push_back(b.Build());
    begin = end;
  }
  return pieces;
}

TEST(DeltaWorkload, RepeatedBoundarySplittingSplicesReassembleTheBytes) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  const uint64_t seed = 885;
  NRel base = RandomRelation<NaturalSemiring>({0, 1}, 3000, 100, seed);
  Rng rng(seed + 1);
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE(InstanceLabel("round " + std::to_string(round), seed));
    std::vector<size_t> cuts;
    for (uint64_t c : rng.Sample(base.size() - 2, 3))
      cuts.push_back(static_cast<size_t>(c) + 1);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    NRel out =
        NRel::ConcatPieces(base.schema(), SplitWithBoundaryOverlap(base, cuts));
    EXPECT_TRUE(out.canonical());
    EXPECT_TRUE(BytesEqual(out, base));
    base = std::move(out);  // re-splice the splice: repeated application
  }
}

TEST(DeltaWorkload, EncodedPiecesSpliceBitIdenticalToPlain) {
  // Pieces arriving already dict/FOR-encoded (a delta shipped over the
  // stream transport lands encoded): ConcatPieces decodes to splice and the
  // output bytes must match the all-plain splice of the same pieces.
  const uint64_t seed = 887;
  NRel base;
  {
    ScopedEncodingMode scope(EncodingMode::kPlain);
    base = RandomRelation<NaturalSemiring>({0, 1}, 4000, 64, seed, 1);
  }
  const std::vector<size_t> cuts = {base.size() / 3, (2 * base.size()) / 3};
  for (EncodingMode m : {EncodingMode::kForceDict, EncodingMode::kForceFor}) {
    SCOPED_TRACE("mode " + std::to_string(static_cast<int>(m)));
    std::vector<NRel> pieces;
    {
      ScopedEncodingMode scope(m);
      pieces = SplitWithBoundaryOverlap(base, cuts);
      ASSERT_TRUE(pieces[0].any_encoded());
    }
    ScopedEncodingMode scope(EncodingMode::kPlain);
    NRel out = NRel::ConcatPieces(base.schema(), std::move(pieces));
    EXPECT_TRUE(out.canonical());
    EXPECT_FALSE(out.any_encoded());
    EXPECT_TRUE(BytesEqual(out, base));
  }
}

TEST(DeltaWorkload, CancellingSpliceDropsRowsAndCanEmptyTheRelation) {
  // GF(2): a boundary row duplicated into both adjacent pieces cancels
  // (1 XOR 1) and must vanish from the splice; splicing a relation against
  // a full copy of itself empties it — the delta-that-empties-a-relation
  // storage case.
  ScopedEncodingMode plain(EncodingMode::kPlain);
  using GRel = Relation<Gf2Semiring>;
  const uint64_t seed = 889;
  GRel base = RandomRelation<Gf2Semiring>({0, 1}, 2000, 150, seed);
  ASSERT_GT(base.size(), 10u);

  const size_t cut = base.size() / 2;
  std::vector<Value> row(base.arity());
  RelationBuilder<Gf2Semiring> b0{base.schema()}, b1{base.schema()};
  for (size_t i = 0; i < base.size(); ++i) {
    for (size_t j = 0; j < row.size(); ++j) row[j] = base.at(i, j);
    if (i < cut) b0.Append(row, 1);
    if (i >= cut - 1) b1.Append(row, 1);  // row cut-1 lands in both pieces
  }
  std::vector<GRel> pieces;
  pieces.push_back(b0.Build());
  pieces.push_back(b1.Build());
  GRel out = GRel::ConcatPieces(base.schema(), std::move(pieces));
  EXPECT_TRUE(out.canonical());
  GRel expect = base;
  expect.set_annot(cut - 1, 0);
  expect.Compact();
  EXPECT_TRUE(BytesEqual(out, expect));

  // Full self-cancellation: every row pairs off, the result is empty.
  std::vector<GRel> both;
  both.push_back(out);
  both.push_back(out);
  GRel empty = GRel::ConcatPieces(out.schema(), std::move(both));
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.canonical());
}

// --- Parallel canonicalization (the parallelized serial preamble) ----------

template <CommutativeSemiring S, typename AnnotFn>
void CheckParallelCanonicalize(uint64_t seed, AnnotFn annot) {
  Rng rng(seed);
  Relation<S> base{Schema({0, 1})};
  std::vector<Value> row(2);
  // > kParallelMinRows rows with duplicates, so the parallel sort path and
  // the duplicate ⊕ folds are both exercised.
  for (int i = 0; i < 6000; ++i) {
    row[0] = rng.NextU64(40);
    row[1] = rng.NextU64(40);
    base.Add(row, annot(&rng));
  }
  ExecContext serial;
  serial.parallelism = 1;
  Relation<S> want = base;
  want.Canonicalize(&serial);
  for (int p : {2, 4, static_cast<int>(std::thread::hardware_concurrency())}) {
    ExecContext ctx;
    ctx.parallelism = std::max(p, 1);
    Relation<S> got = base;
    got.Canonicalize(&ctx);
    EXPECT_TRUE(got.canonical());
    EXPECT_TRUE(BytesEqual(want, got)) << "parallelism " << p;
  }
}

TEST(ParallelCanonicalize, BitIdenticalAcrossParallelismNatural) {
  CheckParallelCanonicalize<NaturalSemiring>(
      91, [](Rng* r) { return r->NextU64(9) + 1; });
}

TEST(ParallelCanonicalize, BitIdenticalAcrossParallelismCountingFloat) {
  // Duplicate folds are float additions: the index-tiebroken total order
  // pins their association, so even double ⊕ must be bit-identical.
  CheckParallelCanonicalize<CountingSemiring>(
      92, [](Rng* r) { return 0.25 * static_cast<double>(r->NextU64(31) + 1); });
}

// --- Columnar kernel vs reference across semirings × shapes × parallelism --

enum class Shape { kRandom, kSkewed, kEmpty, kSingleKeyRun };

template <CommutativeSemiring S, typename AnnotFn>
Relation<S> ShapedRel(Rng* rng, std::vector<VarId> vars, size_t n,
                      Shape shape, AnnotFn annot) {
  Relation<S> r{Schema(std::move(vars))};
  if (shape == Shape::kEmpty) return r;
  std::vector<Value> row(r.arity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < row.size(); ++j) {
      switch (shape) {
        case Shape::kRandom:
          row[j] = rng->NextU64(64);
          break;
        case Shape::kSkewed: {
          const uint64_t v = rng->NextU64(64);
          row[j] = (j == 0) ? (v * v) / 256 : v;  // front-loaded first column
          break;
        }
        case Shape::kSingleKeyRun:
          row[j] = (j == 0) ? 7 : rng->NextU64(64);
          break;
        case Shape::kEmpty:
          break;
      }
    }
    r.Add(row, annot(rng));
  }
  r.Canonicalize();
  return r;
}

/// Differential check of the columnar kernel against reference_ops at the
/// given parallelism: Join/Semijoin/Project/Eliminate on 2000-row inputs of
/// the named shape (above kParallelMinRows, so p > 1 really fans out).
template <CommutativeSemiring S, typename AnnotFn>
void CrossCheckShapedAtParallelism(uint64_t seed, Shape shape, int p,
                                   AnnotFn annot) {
  Rng rng(seed);
  ExecContext ctx;
  ctx.parallelism = p;
  auto a = ShapedRel<S>(&rng, {0, 1}, 2000, shape, annot);
  auto b = ShapedRel<S>(&rng, {1, 2}, 2000, shape, annot);
  EXPECT_TRUE(Join(a, b, &ctx).EqualsAsFunction(reference::Join(a, b)));
  EXPECT_TRUE(
      Semijoin(a, b, &ctx).EqualsAsFunction(reference::Semijoin(a, b)));
  EXPECT_TRUE(Project(a, {1}, &ctx).EqualsAsFunction(
      reference::Project(a, {1})));
  if (!a.empty())
    for (VarOp op : {VarOp::kSemiringSum, VarOp::kMax})
      EXPECT_TRUE(EliminateVar(a, 1, op, &ctx).EqualsAsFunction(
          reference::EliminateVar(a, 1, op)));
}

template <CommutativeSemiring S, typename AnnotFn>
void CrossCheckAllShapes(uint64_t seed, AnnotFn annot) {
  const int hw = std::max(1, static_cast<int>(
                                 std::thread::hardware_concurrency()));
  for (Shape shape : {Shape::kRandom, Shape::kSkewed, Shape::kEmpty,
                      Shape::kSingleKeyRun})
    for (int p : {1, 2, hw})
      CrossCheckShapedAtParallelism<S>(
          seed + static_cast<uint64_t>(shape) * 131 +
              static_cast<uint64_t>(p),
          shape, p, annot);
}

TEST(ColumnarVsReference, NaturalAllShapesAllParallelism) {
  CrossCheckAllShapes<NaturalSemiring>(
      1101, [](Rng* r) { return r->NextU64(5) + 1; });
}

TEST(ColumnarVsReference, CountingAllShapesAllParallelism) {
  CrossCheckAllShapes<CountingSemiring>(
      2202, [](Rng* r) { return 0.5 * static_cast<double>(r->NextU64(7) + 1); });
}

TEST(ColumnarVsReference, MinPlusAllShapesAllParallelism) {
  CrossCheckAllShapes<MinPlusSemiring>(
      3303, [](Rng* r) { return static_cast<double>(r->NextU64(9)); });
}

TEST(ColumnarVsReference, Gf2AllShapesAllParallelism) {
  CrossCheckAllShapes<Gf2Semiring>(
      4404, [](Rng*) { return static_cast<uint8_t>(1); });
}

}  // namespace
}  // namespace topofaq
