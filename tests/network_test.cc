// Synchronous-network simulator tests: capacity enforcement, pipelining
// round counts (the N/cap + distance shape), convergecast (Theorem 3.11
// engine) and store-and-forward gathers.
#include <gtest/gtest.h>

#include "graphalg/steiner.h"
#include "graphalg/topologies.h"
#include "network/primitives.h"
#include "network/simulator.h"

namespace topofaq {
namespace {

TEST(Simulator, ReserveEnforcesCapacity) {
  SyncNetwork net(LineTopology(2), /*capacity_bits=*/10);
  EXPECT_EQ(net.Reserve(0, 0, 0, 6), 6);
  EXPECT_EQ(net.Reserve(0, 0, 0, 6), 4);  // only 4 left this round
  EXPECT_EQ(net.Reserve(0, 0, 0, 6), 0);
  EXPECT_EQ(net.Reserve(0, 0, 1, 6), 6);  // fresh round
  EXPECT_EQ(net.total_bits(), 16);
}

TEST(Simulator, DirectionsAreIndependent) {
  SyncNetwork net(LineTopology(2), 8);
  EXPECT_EQ(net.Reserve(0, 0, 0, 8), 8);  // 0 -> 1
  EXPECT_EQ(net.Reserve(0, 1, 0, 8), 8);  // 1 -> 0, same round
}

TEST(Simulator, CreateRejectsCapacityBeyondLedgerLimit) {
  // The uint16 round ledger caps per-round capacity at kMaxCapacityBits;
  // Create surfaces that contract as a Status (and names the AsyncNetwork
  // escape hatch) instead of CHECK-crashing.
  auto at_limit = SyncNetwork::Create(LineTopology(2),
                                      SyncNetwork::kMaxCapacityBits);
  ASSERT_TRUE(at_limit.ok());
  EXPECT_EQ(at_limit->capacity_bits(), SyncNetwork::kMaxCapacityBits);
  auto over = SyncNetwork::Create(LineTopology(2),
                                  SyncNetwork::kMaxCapacityBits + 1);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("AsyncNetwork"), std::string::npos);
  EXPECT_FALSE(SyncNetwork::Create(LineTopology(2), 0).ok());
  EXPECT_FALSE(SyncNetwork::ValidateCapacity(int64_t{1} << 20).ok());
}

TEST(Simulator, HorizonTracksLastTraffic) {
  SyncNetwork net(LineTopology(2), 8);
  EXPECT_EQ(net.horizon(), 0);
  net.Reserve(0, 0, 5, 3);
  EXPECT_EQ(net.horizon(), 6);
}

TEST(Unicast, SingleHopTakesCeilBitsOverCap) {
  SyncNetwork net(LineTopology(2), 10);
  // 35 bits at 10/round: rounds 0..3, done at round 4.
  EXPECT_EQ(UnicastBits(&net, 0, 1, 35, 0), 4);
}

TEST(Unicast, PipeliningAddsDistanceNotProduct) {
  // 100 bits over 4 hops at 10/round: ceil(100/10) + (4-1) = 13 rounds.
  SyncNetwork net(LineTopology(5), 10);
  EXPECT_EQ(UnicastBits(&net, 0, 4, 100, 0), 13);
}

TEST(Unicast, StartRoundOffsetsSchedule) {
  SyncNetwork net(LineTopology(2), 10);
  EXPECT_EQ(UnicastBits(&net, 0, 1, 10, 5), 6);
}

TEST(Unicast, SequentialTransfersShareEdgeFairly) {
  SyncNetwork net(LineTopology(2), 10);
  int64_t r1 = UnicastBits(&net, 0, 1, 50, 0);
  EXPECT_EQ(r1, 5);
  // Second transfer must queue behind the first on the same edge.
  int64_t r2 = UnicastBits(&net, 0, 1, 50, 0);
  EXPECT_EQ(r2, 10);
}

TEST(Unicast, OppositeDirectionsDoNotContend) {
  SyncNetwork net(LineTopology(2), 10);
  EXPECT_EQ(UnicastBits(&net, 0, 1, 50, 0), 5);
  EXPECT_EQ(UnicastBits(&net, 1, 0, 50, 0), 5);
}

TEST(Broadcast, ReachesAllTargetsWithPipelining) {
  // Line of 4, 100 bits, cap 10: farthest target at distance 3; pipelining
  // gives ceil(100/10) + (3 - 1) transmission rounds, done at round 12.
  SyncNetwork net(LineTopology(4), 10);
  int64_t r = BroadcastBits(&net, 0, {1, 2, 3}, 100, 0);
  EXPECT_EQ(r, 12);
}

TEST(Broadcast, StarIsSingleRoundPerChunk) {
  SyncNetwork net(StarTopology(5), 10);
  // Hub to all spokes: 30 bits at 10/round = 3 rounds, all spokes parallel.
  EXPECT_EQ(BroadcastBits(&net, 0, {1, 2, 3, 4}, 30, 0), 3);
}

TEST(Broadcast, NoTargetsIsFree) {
  SyncNetwork net(LineTopology(3), 10);
  EXPECT_EQ(BroadcastBits(&net, 0, {0}, 100, 0), 0);
}

TEST(OrientTree, BuildsParentsAndDepths) {
  Graph g = LineTopology(4);
  RootedTree t = OrientTree(g, {0, 1, 2}, 1);
  EXPECT_EQ(t.parent[0], 1);
  EXPECT_EQ(t.parent[2], 1);
  EXPECT_EQ(t.parent[3], 2);
  EXPECT_EQ(t.depth[3], 2);
  EXPECT_EQ(t.children[1].size(), 2u);
}

TEST(Convergecast, LineMatchesTheorem311Shape) {
  // k players on a line, each with an N-item 1-bit vector, cap 1 bit:
  // N + depth - 1 = N + 2 rounds — exactly the Example 2.1 protocol shape.
  Graph g = LineTopology(4);
  SyncNetwork net(g, 1);
  RootedTree tree = OrientTree(g, {0, 1, 2}, 3);
  int64_t r = ConvergecastItems(&net, tree, /*n_items=*/100, /*item_bits=*/1, 0);
  EXPECT_EQ(r, 100 + 2);
}

TEST(Convergecast, WideCapacityReducesRounds) {
  Graph g = LineTopology(4);
  SyncNetwork net(g, 10);
  RootedTree tree = OrientTree(g, {0, 1, 2}, 3);
  int64_t r = ConvergecastItems(&net, tree, 100, 1, 0);
  EXPECT_EQ(r, 10 + 2);
}

TEST(Convergecast, ItemWiderThanCapacityStillProgresses) {
  Graph g = LineTopology(3);
  SyncNetwork net(g, 2);
  RootedTree tree = OrientTree(g, {0, 1}, 2);
  // 10 items of 8 bits over 2 hops at 2 bits/round: 80/2 + lag.
  int64_t r = ConvergecastItems(&net, tree, 10, 8, 0);
  EXPECT_GE(r, 40);
  EXPECT_LE(r, 40 + 8);
}

TEST(Convergecast, ParallelTreesShareNothing) {
  // Two edge-disjoint Hamiltonian paths of the 4-clique, each carrying half
  // the items: both finish in about N/2 + 3 (Example 2.3's N/2 + 2 shape).
  Graph g = CliqueTopology(4);
  auto trees = PackSteinerTrees(g, {0, 1, 2, 3}, 3, /*seed=*/7);
  ASSERT_EQ(trees.size(), 2u);
  SyncNetwork net(g, 1);
  RootedTree t0 = OrientTree(g, trees[0].edges, 1);
  RootedTree t1 = OrientTree(g, trees[1].edges, 1);
  int64_t r0 = ConvergecastItems(&net, t0, 500, 1, 0);
  int64_t r1 = ConvergecastItems(&net, t1, 500, 1, 0);
  EXPECT_LE(std::max(r0, r1), 500 + 4);
}

TEST(Gather, SingleSourceMatchesUnicast) {
  SyncNetwork net(LineTopology(3), 10);
  int64_t r = GatherFlows(&net, {{0, 100}}, 2, 0);
  EXPECT_EQ(r, 10 + 1);
}

TEST(Gather, LineIsBottleneckedByLastEdge) {
  // All players send 100 bits to node 3 on a line: the edge 2-3 must carry
  // 300 bits at 10/round => >= 30 rounds.
  SyncNetwork net(LineTopology(4), 10);
  int64_t r = GatherFlows(&net, {{0, 100}, {1, 100}, {2, 100}}, 3, 0);
  EXPECT_GE(r, 30);
  EXPECT_LE(r, 36);
}

TEST(Gather, CliqueParallelizesAcrossDirectEdges) {
  SyncNetwork net(CliqueTopology(5), 10);
  std::vector<FlowDemand> demands{{1, 100}, {2, 100}, {3, 100}, {4, 100}};
  int64_t r = GatherFlows(&net, demands, 0, 0);
  EXPECT_EQ(r, 10);  // all four direct edges in parallel
}

TEST(Gather, ZeroBitsAndSelfDemandsAreFree) {
  SyncNetwork net(LineTopology(3), 10);
  int64_t r = GatherFlows(&net, {{2, 0}, {0, 50}}, 2, 0);
  EXPECT_EQ(r, 5 + 1);
}

TEST(Gather, DumbbellFunnelsThroughBridge) {
  Graph g = DumbbellTopology(3, 3);
  SyncNetwork net(g, 10);
  // Sources on the left clique, sink on the right: bridge carries all.
  int64_t r = GatherFlows(&net, {{0, 100}, {1, 100}, {2, 100}}, 5, 0);
  EXPECT_GE(r, 30);
}

}  // namespace
}  // namespace topofaq
