// Differential tests for incremental view maintenance (ivm/delta.h,
// ivm/standing_query.h, server/subscribe.h).
//
// The contract under test is bit-identity: after every applied delta, the
// standing query's materialized answer must compare byte-equal (BytesEqual,
// tests/bit_identity.h) to a full recompute over a base kept current through
// the *same* ApplyDeltaToRelation path. The matrix crosses every semiring
// with shapes {path, star, triangle, 4-cycle}, parallelism {1, 2, hw}, and
// forced encodings {plain, dict, for}; delete-heavy batches and deltas that
// empty a relation outright are exercised explicitly, since those are where
// an inexact inverse or a stale message would show. The engine-level tests
// cover Subscribe/ApplyDelta plumbing: admission pricing the delta (not the
// standing database), rejection leaving the answer untouched, and the
// validation surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bit_identity.h"
#include "faq/solvers.h"
#include "hypergraph/generators.h"
#include "ivm/delta.h"
#include "ivm/standing_query.h"
#include "random_instances.h"
#include "relation/encoding.h"
#include "server/engine.h"
#include "server/subscribe.h"
#include "util/rng.h"

namespace topofaq {
namespace {

/// A random batched delta against `base`: `n_remove` existing rows sampled
/// without replacement, `n_add` rows of which roughly half collide with
/// existing keys (⊕-merge / cancellation paths) and half are fresh.
template <CommutativeSemiring S>
Delta<S> RandomDelta(const Relation<S>& base, uint64_t dom, uint64_t seed,
                     size_t n_remove, size_t n_add) {
  Rng rng(seed);
  Delta<S> d;
  d.removes = Relation<S>(base.schema());
  d.adds = Relation<S>(base.schema());
  std::vector<Value> row(base.arity());
  if (!base.empty() && n_remove > 0) {
    for (uint64_t i :
         rng.Sample(base.size(), std::min<uint64_t>(n_remove, base.size()))) {
      for (size_t j = 0; j < row.size(); ++j) row[j] = base.at(i, j);
      d.removes.Add(std::span<const Value>(row), S::One());
    }
  }
  for (size_t i = 0; i < n_add; ++i) {
    if (!base.empty() && rng.NextBool()) {
      const size_t r = rng.NextU64(base.size());
      for (size_t j = 0; j < row.size(); ++j) row[j] = base.at(r, j);
    } else {
      for (size_t j = 0; j < row.size(); ++j) row[j] = rng.NextU64(dom);
    }
    d.adds.Add(std::span<const Value>(row), TestAnnot<S>(rng.NextU64(1u << 20)));
  }
  return d;
}

/// One differential round: apply `d` to the standing query and (a copy) to
/// the oracle's base, then assert the updated base and the answer are both
/// byte-identical to the standing state.
template <CommutativeSemiring S>
void CheckRound(StandingQuery<S>* sq, FaqQuery<S>* oracle, int rel, Delta<S> d,
                ExecContext* ctx) {
  Delta<S> d2 = d;
  const Status applied = sq->ApplyDelta(rel, std::move(d), ctx);
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  const Status mirrored =
      ApplyDeltaToQuery(oracle, rel, std::move(d2), ctx);
  ASSERT_TRUE(mirrored.ok()) << mirrored.ToString();
  // Both sides go through ApplyDeltaToRelation, so the bases must agree
  // byte-for-byte before the answers are even compared.
  ASSERT_TRUE(BytesEqual(sq->query().relations[static_cast<size_t>(rel)],
                         oracle->relations[static_cast<size_t>(rel)]));
  auto full = YannakakisSolve(*oracle, ctx);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_TRUE(BytesEqual(sq->Current(), *full));
}

/// Runs `rounds` random deltas against one random instance; every third
/// round is delete-heavy (half the touched base erased, nothing added).
template <CommutativeSemiring S>
void RunDifferential(const Hypergraph& h, std::vector<VarId> free_vars,
                     size_t tuples, uint64_t dom, uint64_t seed,
                     int parallelism, int rounds) {
  ExecContext ctx;
  ctx.parallelism = parallelism;
  FaqQuery<S> oracle = RandomQuery<S>(h, tuples, dom, seed, free_vars);
  auto sq = StandingQuery<S>::Create(oracle, &ctx);
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();
  auto full0 = YannakakisSolve(oracle, &ctx);
  ASSERT_TRUE(full0.ok()) << full0.status().ToString();
  ASSERT_TRUE(BytesEqual(sq->Current(), *full0));
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const int rel = static_cast<int>(rng.NextU64(oracle.relations.size()));
    const Relation<S>& base = oracle.relations[static_cast<size_t>(rel)];
    size_t n_remove, n_add;
    if (round % 3 == 2) {  // delete-heavy batch
      n_remove = base.size() / 2 + 1;
      n_add = 0;
    } else {
      n_remove = rng.NextU64(base.size() / 4 + 1);
      n_add = 1 + rng.NextU64(tuples / 4 + 1);
    }
    CheckRound(&*sq, &oracle, rel,
               RandomDelta<S>(base, dom, seed + 7777 + round, n_remove, n_add),
               &ctx);
    if (::testing::Test::HasFailure()) return;
  }
}

/// The acceptance matrix for one semiring: shapes × parallelism × forced
/// encoding modes, each cell a fresh seeded instance.
template <CommutativeSemiring S>
void RunMatrix(uint64_t seed0) {
  struct ShapeCase {
    const char* name;
    Hypergraph h;
    std::vector<VarId> free_vars;
  };
  std::vector<ShapeCase> shapes;
  shapes.push_back({"path", PathGraph(2), {0}});
  shapes.push_back({"star", StarGraph(3), {0}});
  shapes.push_back({"triangle", CycleGraph(3), {0, 1}});
  shapes.push_back({"4-cycle", CycleGraph(4), {0}});
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  const struct {
    const char* name;
    EncodingMode mode;
  } encodings[] = {{"plain", EncodingMode::kPlain},
                   {"dict", EncodingMode::kForceDict},
                   {"for", EncodingMode::kForceFor}};
  uint64_t seed = seed0;
  for (const ShapeCase& sh : shapes) {
    for (int p : {1, 2, hw}) {
      for (const auto& enc : encodings) {
        ++seed;
        SCOPED_TRACE(InstanceLabel(std::string(sh.name) + " p=" +
                                       std::to_string(p) + " enc=" + enc.name,
                                   seed));
        ScopedEncodingMode scoped(enc.mode);
        RunDifferential<S>(sh.h, sh.free_vars, 120, 30, seed, p, 5);
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(IvmDifferential, BooleanMatrix) { RunMatrix<BooleanSemiring>(11000); }
TEST(IvmDifferential, NaturalMatrix) { RunMatrix<NaturalSemiring>(12000); }
TEST(IvmDifferential, CountingMatrix) { RunMatrix<CountingSemiring>(13000); }
TEST(IvmDifferential, MinPlusMatrix) { RunMatrix<MinPlusSemiring>(14000); }
TEST(IvmDifferential, MaxProductMatrix) {
  RunMatrix<MaxProductSemiring>(15000);
}
TEST(IvmDifferential, Gf2Matrix) { RunMatrix<Gf2Semiring>(16000); }

// F = ∅: the standing answer is a scalar (arity-0 relation) — full
// contraction is where sloppy delta algebra would hide, since every tuple
// folds into one annotation.
TEST(IvmDifferential, ScalarAggregateOverTriangle) {
  RunDifferential<NaturalSemiring>(CycleGraph(3), {}, 150, 25, 501, 2, 6);
  if (::testing::Test::HasFailure()) return;
  RunDifferential<CountingSemiring>(CycleGraph(3), {}, 150, 25, 502, 2, 6);
  if (::testing::Test::HasFailure()) return;
  RunDifferential<MinPlusSemiring>(CycleGraph(3), {}, 150, 25, 503, 1, 6);
}

/// Wipes relation 1 with a delta whose removes are a full copy of the base,
/// asserts the answer empties exactly, then refills and asserts recovery.
template <CommutativeSemiring S>
void RunEmptying(uint64_t seed) {
  ExecContext ctx;
  ctx.parallelism = 2;
  FaqQuery<S> oracle = RandomQuery<S>(PathGraph(2), 100, 20, seed, {0});
  auto sq = StandingQuery<S>::Create(oracle, &ctx);
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();
  ASSERT_FALSE(sq->Current().empty());

  Delta<S> wipe;
  wipe.removes = oracle.relations[1];
  CheckRound(&*sq, &oracle, 1, std::move(wipe), &ctx);
  if (::testing::Test::HasFailure()) return;
  EXPECT_TRUE(oracle.relations[1].empty());
  EXPECT_TRUE(sq->Current().empty()) << "join against an emptied relation";

  Delta<S> refill;
  refill.adds = RandomRelation<S>({1, 2}, 80, 20, seed + 1);
  CheckRound(&*sq, &oracle, 1, std::move(refill), &ctx);
  if (::testing::Test::HasFailure()) return;
  EXPECT_FALSE(sq->Current().empty()) << "standing query recovers from empty";
}

TEST(IvmDifferential, DeltaThatEmptiesARelation) {
  RunEmptying<NaturalSemiring>(61);  // exact ring: cancellation is exact
  if (::testing::Test::HasFailure()) return;
  RunEmptying<BooleanSemiring>(62);  // idempotent: recompute path
  if (::testing::Test::HasFailure()) return;
  RunEmptying<CountingSemiring>(63);  // ring but inexact: recompute path
}

// GF2's ⊕ is its own inverse: adding the base to itself must cancel every
// row — the relation empties through the *adds* half, with no removes.
TEST(IvmDifferential, Gf2AddIsItsOwnInverse) {
  ExecContext ctx;
  ctx.parallelism = 1;
  FaqQuery<Gf2Semiring> oracle =
      RandomQuery<Gf2Semiring>(PathGraph(2), 60, 15, 71, {0});
  auto sq = StandingQuery<Gf2Semiring>::Create(oracle, &ctx);
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();
  Delta<Gf2Semiring> d;
  d.adds = oracle.relations[0];
  CheckRound(&*sq, &oracle, 0, std::move(d), &ctx);
  if (::testing::Test::HasFailure()) return;
  EXPECT_TRUE(oracle.relations[0].empty());
  EXPECT_TRUE(sq->Current().empty());
}

// ---------------------------------------------------------------------------
// Maintenance-mode classification and stats
// ---------------------------------------------------------------------------

TEST(IvmModes, RingPropagationOnlyForExactRingsWithAllSumAggregates) {
  ExecContext ctx;
  ctx.parallelism = 1;
  const Hypergraph h = PathGraph(2);
  {
    auto q = RandomQuery<NaturalSemiring>(h, 50, 12, 81, {0});
    auto sq = StandingQuery<NaturalSemiring>::Create(q, &ctx);
    ASSERT_TRUE(sq.ok());
    EXPECT_TRUE(sq->ring_mode()) << "Z/2^64 is an exact ring";
  }
  {
    auto q = RandomQuery<Gf2Semiring>(h, 50, 12, 82, {0});
    auto sq = StandingQuery<Gf2Semiring>::Create(q, &ctx);
    ASSERT_TRUE(sq.ok());
    EXPECT_TRUE(sq->ring_mode()) << "F2 is an exact ring";
  }
  {
    auto q = RandomQuery<CountingSemiring>(h, 50, 12, 83, {0});
    auto sq = StandingQuery<CountingSemiring>::Create(q, &ctx);
    ASSERT_TRUE(sq.ok());
    EXPECT_FALSE(sq->ring_mode()) << "floats are a ring but not exact";
  }
  {
    auto q = RandomQuery<BooleanSemiring>(h, 50, 12, 84, {0});
    auto sq = StandingQuery<BooleanSemiring>::Create(q, &ctx);
    ASSERT_TRUE(sq.ok());
    EXPECT_FALSE(sq->ring_mode()) << "idempotent ⊕ has no inverse";
  }
  {
    // A bound min-aggregate breaks ⊕-linearity even over an exact ring.
    auto q = RandomQuery<NaturalSemiring>(h, 50, 12, 85, {0});
    q.var_ops[2] = VarOp::kMin;
    auto sq = StandingQuery<NaturalSemiring>::Create(q, &ctx);
    ASSERT_TRUE(sq.ok());
    EXPECT_FALSE(sq->ring_mode());
    // The recompute fallback must still be differentially correct.
    CheckRound(&*sq, &q, 0, RandomDelta<NaturalSemiring>(q.relations[0], 12, 86, 8, 12),
               &ctx);
  }
}

TEST(IvmModes, StatsCountPropagationAndCleanSubtreeReuse) {
  ExecContext ctx;
  ctx.parallelism = 1;
  // Recompute path over a star: touching one leaf must reuse every clean
  // node's cached message. The expected reuse count is read off the
  // decomposition (num_nodes minus the touched node's root path).
  FaqQuery<BooleanSemiring> oracle =
      RandomQuery<BooleanSemiring>(StarGraph(3), 80, 16, 91, {0});
  auto sq = StandingQuery<BooleanSemiring>::Create(oracle, &ctx);
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();
  EXPECT_FALSE(sq->ring_mode());
  const int rel = 2;
  CheckRound(&*sq, &oracle, rel,
             RandomDelta<BooleanSemiring>(oracle.relations[rel], 16, 92, 5, 10),
             &ctx);
  if (::testing::Test::HasFailure()) return;

  const Ghd& ghd = sq->decomposition().ghd;
  int path_len = 0;
  for (int v = sq->decomposition().node_of_edge[rel]; v >= 0;
       v = ghd.node(v).parent)
    ++path_len;
  const StandingStats st = sq->stats();
  EXPECT_EQ(st.deltas_applied, 1);
  EXPECT_EQ(st.recompute_deltas, 1);
  EXPECT_EQ(st.ring_deltas, 0);
  EXPECT_EQ(st.nodes_updated, path_len);
  EXPECT_EQ(st.nodes_reused, ghd.num_nodes() - path_len);
  EXPECT_EQ(st.nodes_updated + st.nodes_reused, ghd.num_nodes());

  // Empty deltas are free: admitted trivially, counted nowhere.
  const Status empty_delta =
      sq->ApplyDelta(0, Delta<BooleanSemiring>{}, &ctx);
  EXPECT_TRUE(empty_delta.ok());
  EXPECT_EQ(sq->stats().deltas_applied, 1);

  // Ring path counters on the exact-ring twin.
  FaqQuery<NaturalSemiring> noracle =
      RandomQuery<NaturalSemiring>(PathGraph(2), 80, 16, 93, {0});
  auto nsq = StandingQuery<NaturalSemiring>::Create(noracle, &ctx);
  ASSERT_TRUE(nsq.ok());
  CheckRound(&*nsq, &noracle, 0,
             RandomDelta<NaturalSemiring>(noracle.relations[0], 16, 94, 5, 10),
             &ctx);
  if (::testing::Test::HasFailure()) return;
  EXPECT_EQ(nsq->stats().ring_deltas, 1);
  EXPECT_EQ(nsq->stats().recompute_deltas, 0);
}

TEST(IvmModes, CreateRejectsFreeVarsNoRootCanCover) {
  // On a path 0-1-2 no bag contains both endpoints: one-shot Solve would
  // fall back to brute force, but a standing query must refuse.
  auto q = RandomQuery<BooleanSemiring>(PathGraph(2), 40, 10, 95, {0, 2});
  auto sq = StandingQuery<BooleanSemiring>::Create(std::move(q));
  EXPECT_FALSE(sq.ok());
}

// ---------------------------------------------------------------------------
// Engine subscription surface
// ---------------------------------------------------------------------------

TEST(IvmEngine, SubscribeMatchesSolveAndStaysCurrentUnderDeltas) {
  Engine engine{EngineOptions{}};
  FaqQuery<NaturalSemiring> oracle =
      RandomQuery<NaturalSemiring>(PathGraph(2), 300, 40, 901, {0});
  QueryRequest req;
  req.query = oracle;
  req.tag = "ivm-subscribe";
  auto ss = engine.Subscribe(std::move(req));
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  EXPECT_TRUE((*ss)->ring_mode());
  EXPECT_EQ((*ss)->num_relations(), 2);

  auto solved0 = engine.Solve<NaturalSemiring>(oracle);
  ASSERT_TRUE(solved0.ok()) << solved0.status().ToString();
  EXPECT_TRUE(BytesEqual((*ss)->Current<NaturalSemiring>(), *solved0));

  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const int rel = round % 2;
    Delta<NaturalSemiring> d = RandomDelta<NaturalSemiring>(
        oracle.relations[static_cast<size_t>(rel)], 40, 903 + round, 20, 30);
    Delta<NaturalSemiring> d2 = d;
    auto r = (*ss)->ApplyDelta(rel, std::move(d));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const Status mirrored = ApplyDeltaToQuery(&oracle, rel, std::move(d2));
    ASSERT_TRUE(mirrored.ok()) << mirrored.ToString();
    auto full = engine.Solve<NaturalSemiring>(oracle);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_TRUE(BytesEqual((*ss)->Current<NaturalSemiring>(), *full));
  }
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.subscriptions, 1);
  EXPECT_EQ(st.deltas_applied, 4);
  EXPECT_EQ(st.deltas_rejected, 0);
}

TEST(IvmEngine, SubscribeRequiresTheGhdPass) {
  Engine engine{EngineOptions{}};
  auto q = RandomQuery<BooleanSemiring>(PathGraph(2), 60, 12, 905, {0, 2});
  // One-shot Solve finishes this shape by brute force…
  auto solved = engine.Solve<BooleanSemiring>(q);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  // …but subscriptions need maintainable GHD state, so they refuse.
  QueryRequest req;
  req.query = std::move(q);
  auto ss = engine.Subscribe(std::move(req));
  EXPECT_FALSE(ss.ok());
}

TEST(IvmEngine, DeltaValidationSurface) {
  Engine engine{EngineOptions{}};
  FaqQuery<NaturalSemiring> q =
      RandomQuery<NaturalSemiring>(PathGraph(2), 50, 12, 906, {0});
  QueryRequest req;
  req.query = q;
  auto ss = engine.Subscribe(std::move(req));
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  const AnyRelation before = (*ss)->Current();

  // Wrong semiring for the subscription.
  auto r1 = (*ss)->ApplyDelta(0, AnyDelta(Delta<BooleanSemiring>{}));
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  // Unknown relation id.
  auto r2 = (*ss)->ApplyDelta(7, Delta<NaturalSemiring>{});
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Schema mismatch against the touched base.
  Delta<NaturalSemiring> bad;
  bad.adds = RandomRelation<NaturalSemiring>({5, 6, 7}, 4, 8, 907);
  auto r3 = (*ss)->ApplyDelta(0, std::move(bad));
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);

  // Nothing was applied: the answer is untouched, the counters unmoved.
  EXPECT_TRUE(BytesEqual(std::get<Relation<NaturalSemiring>>(before),
                         (*ss)->Current<NaturalSemiring>()));
  EXPECT_EQ(engine.stats().deltas_applied, 0);
}

TEST(IvmEngine, DeltaAdmissionPricesTheDeltaNotTheBase) {
  EngineOptions opts;
  opts.admission.max_predicted_output_rows = 200;
  Engine engine(opts);
  // A tiny base subscribes comfortably under the cap.
  FaqQuery<NaturalSemiring> q =
      RandomQuery<NaturalSemiring>(PathGraph(2), 8, 200, 908, {0, 1});
  QueryRequest req;
  req.query = q;
  auto ss = engine.Subscribe(std::move(req));
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();

  // A delta whose one hot key would join-amplify past the budget is
  // refused — admission assessed the *delta's* profile, not the 8-row base.
  Delta<NaturalSemiring> big;
  big.adds = Relation<NaturalSemiring>(Schema(std::vector<VarId>{0, 1}));
  for (uint64_t i = 0; i < 600; ++i) big.adds.Add({5, i % 200}, 1);
  auto rejected = (*ss)->ApplyDelta(0, std::move(big));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // Rejected means not applied: the answer still matches a fresh solve of
  // the unmodified query.
  auto unchanged = engine.Solve<NaturalSemiring>(q);
  ASSERT_TRUE(unchanged.ok()) << unchanged.status().ToString();
  EXPECT_TRUE(BytesEqual((*ss)->Current<NaturalSemiring>(), *unchanged));

  // A small delta on the same session is still admitted and applied.
  Delta<NaturalSemiring> small;
  small.adds = Relation<NaturalSemiring>(Schema(std::vector<VarId>{0, 1}));
  small.adds.Add({3, 4}, 2);
  Delta<NaturalSemiring> small2 = small;
  auto ok = (*ss)->ApplyDelta(0, std::move(small));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  const Status mirrored = ApplyDeltaToQuery(&q, 0, std::move(small2));
  ASSERT_TRUE(mirrored.ok()) << mirrored.ToString();
  auto full = engine.Solve<NaturalSemiring>(q);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_TRUE(BytesEqual((*ss)->Current<NaturalSemiring>(), *full));

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.deltas_rejected, 1);
  EXPECT_EQ(st.deltas_applied, 1);
}

}  // namespace
}  // namespace topofaq
