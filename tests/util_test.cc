#include <gtest/gtest.h>

#include <set>

#include "util/bits.h"
#include "util/rng.h"
#include "util/status.h"

namespace topofaq {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedValuesInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextU64(17), 17u);
}

TEST(Rng, BoundedValuesCoverRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextU64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SampleDistinctAndInRange) {
  Rng rng(13);
  auto s = rng.Sample(50, 20);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 20u);
  for (uint64_t v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleFullRange) {
  Rng rng(13);
  auto s = rng.Sample(10, 10);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 100), 1);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(Bits, BitsForDomain) {
  EXPECT_EQ(BitsForDomain(1), 1);  // at least one bit
  EXPECT_EQ(BitsForDomain(2), 1);
  EXPECT_EQ(BitsForDomain(256), 8);
  EXPECT_EQ(BitsForDomain(257), 9);
}

}  // namespace
}  // namespace topofaq
