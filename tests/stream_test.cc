// Event-driven network + streaming relation transport tests: channel
// timing/FIFO/accounting of AsyncNetwork, and the paging edge cases of
// StreamNet — empty relations, sub-page payloads, exact page multiples,
// key runs spanning a page boundary, and the per-node page-budget
// backpressure rule (peak in-flight pages never exceeds the budget).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bit_identity.h"
#include "graphalg/topologies.h"
#include "network/async.h"
#include "network/stream.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;

NRel RandomRel(const std::vector<VarId>& vars, size_t n, uint64_t dom,
               uint64_t seed) {
  Rng rng(seed);
  NRel r{Schema(vars)};
  std::vector<Value> row(vars.size());
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.NextU64(dom);
    r.Add(row, rng.NextU64(100) + 1);
  }
  r.Canonicalize();
  return r;
}

// ---------------------------------------------------------------- AsyncNetwork

TEST(AsyncNet, SingleHopSerializationPlusLatency) {
  AsyncNetwork net(LineTopology(2), LinkParams{1.0, 10.0});
  SimTime arrived = -1;
  net.SetHandler(1, [&](Packet p) {
    arrived = net.now();
    EXPECT_EQ(p.bits, 100);
  });
  Packet p;
  p.bits = 100;
  net.Send(0, 1, p);
  // 100 bits at 10 bits/unit = 10 units serialization + 1 latency.
  EXPECT_DOUBLE_EQ(net.Run(), 11.0);
  EXPECT_DOUBLE_EQ(arrived, 11.0);
  EXPECT_EQ(net.total_bits(), 100);
}

TEST(AsyncNet, ChannelIsFifoSecondPacketQueues) {
  AsyncNetwork net(LineTopology(2), LinkParams{1.0, 10.0});
  std::vector<SimTime> arrivals;
  net.SetHandler(1, [&](Packet) { arrivals.push_back(net.now()); });
  Packet p;
  p.bits = 100;
  net.Send(0, 1, p);
  net.Send(0, 1, p);  // starts serializing when the first finishes
  net.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 11.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 21.0);
}

TEST(AsyncNet, DirectionsAreFullDuplex) {
  AsyncNetwork net(LineTopology(2), LinkParams{1.0, 10.0});
  std::vector<SimTime> arrivals;
  net.SetHandler(0, [&](Packet) { arrivals.push_back(net.now()); });
  net.SetHandler(1, [&](Packet) { arrivals.push_back(net.now()); });
  Packet p;
  p.bits = 100;
  net.Send(0, 1, p);
  net.Send(1, 0, p);  // opposite direction: no contention
  net.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 11.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 11.0);
}

TEST(AsyncNet, SameInstantEventsFireInScheduleOrder) {
  AsyncNetwork net(LineTopology(2), LinkParams{1.0, 1.0});
  std::vector<int> order;
  net.ScheduleAfter(5.0, [&] { order.push_back(1); });
  net.ScheduleAfter(5.0, [&] { order.push_back(2); });
  net.ScheduleAfter(2.0, [&] { order.push_back(0); });
  net.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(net.makespan(), 5.0);
}

TEST(AsyncNet, UtilizationReflectsBusyTime) {
  AsyncNetwork net(LineTopology(2), LinkParams{0.0, 10.0});
  net.SetHandler(1, [](Packet) {});
  Packet p;
  p.bits = 100;
  net.Send(0, 1, p);
  net.Run();  // busy 10 units fwd, makespan 10
  EXPECT_DOUBLE_EQ(net.BusyTime(0, true), 10.0);
  EXPECT_DOUBLE_EQ(net.BusyTime(0, false), 0.0);
  auto util = net.EdgeUtilization();
  ASSERT_EQ(util.size(), 1u);
  EXPECT_DOUBLE_EQ(util[0], 0.5);  // one of two directions saturated
}

TEST(AsyncNet, EmptyRunHasZeroMakespan) {
  AsyncNetwork net(LineTopology(3), LinkParams{1.0, 8.0});
  EXPECT_DOUBLE_EQ(net.Run(), 0.0);
  EXPECT_TRUE(net.EdgeUtilization().empty() ||
              net.EdgeUtilization()[0] == 0.0);
}

// ---------------------------------------------------------------- StreamNet

struct StreamRun {
  NRel rebuilt;
  int64_t pages = 0;
  int64_t peak = 0;
  int64_t bits = 0;
  int64_t payload_encoded = 0;
  int64_t payload_plain = 0;
  SimTime makespan = 0;
  bool completed = false;
};

StreamRun ShipOnce(const NRel& rel, Graph g, NodeId src, NodeId dst,
                   StreamOptions opts) {
  AsyncNetwork net(std::move(g), LinkParams{1.0, 64.0});
  StreamNet<NaturalSemiring> streams(&net, opts);
  StreamRun out;
  streams.SendRelation(src, dst, rel, /*bits_per_attr=*/8,
                       [&](NRel r) {
                         out.rebuilt = std::move(r);
                         out.completed = true;
                       });
  out.makespan = net.Run();
  out.pages = streams.pages_shipped();
  out.peak = streams.max_in_flight_pages();
  out.bits = net.total_bits();
  out.payload_encoded = streams.payload_bits_encoded();
  out.payload_plain = streams.payload_bits_plain();
  return out;
}

TEST(Stream, RoundTripIsBitIdentical) {
  NRel r = RandomRel({0, 1, 2}, 500, 64, 11);
  auto run = ShipOnce(r, LineTopology(2), 0, 1, StreamOptions{64, 4, 64, 32});
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(BytesEqual(r, run.rebuilt));
  EXPECT_EQ(run.pages, static_cast<int64_t>((r.size() + 63) / 64));
  // The plain-model price of the shipped payload matches the relation's
  // own cost model; the wire carries framing + credits on top of whatever
  // actually shipped. The encoded accounting is honest, not bounded: a
  // forced encoding on this high-cardinality input may ship a dictionary
  // table that outweighs the 8-bit plain model, so the two payloads are
  // only required to be consistent, not ordered.
  EXPECT_EQ(run.payload_plain, r.EncodedBits(8));
  EXPECT_GT(run.bits, run.payload_encoded);
  EXPECT_GT(run.payload_encoded, 0);
  EXPECT_GT(run.makespan, 0.0);
}

TEST(Stream, EmptyRelationStillCompletes) {
  NRel r{Schema({0, 1})};
  r.Canonicalize();
  auto run = ShipOnce(r, LineTopology(2), 0, 1, StreamOptions{16, 2, 64, 32});
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(BytesEqual(r, run.rebuilt));
  EXPECT_TRUE(run.rebuilt.canonical());
  EXPECT_EQ(run.pages, 1);  // one empty `last` page carries the completion
}

TEST(Stream, PayloadSmallerThanOnePage) {
  NRel r = RandomRel({0, 1}, 5, 16, 13);
  auto run = ShipOnce(r, LineTopology(2), 0, 1, StreamOptions{4096, 8, 64, 32});
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(BytesEqual(r, run.rebuilt));
  EXPECT_EQ(run.pages, 1);
  EXPECT_EQ(run.peak, 1);
}

TEST(Stream, ExactPageMultipleEmitsNoEmptyTailPage) {
  NRel r = RandomRel({0, 1}, 64, 1 << 20, 17);  // wide domain: no dup merge
  ASSERT_EQ(r.size(), 64u);
  auto run = ShipOnce(r, LineTopology(2), 0, 1, StreamOptions{16, 8, 64, 32});
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(BytesEqual(r, run.rebuilt));
  EXPECT_EQ(run.pages, 4);  // 64 rows / 16 per page, last flag on page 4
}

TEST(Stream, SingleKeyRunSpanningPageBoundary) {
  // One key run (col 0 constant) across every page boundary: the sink's
  // builder must keep the rows distinct (no adjacent-merge) and certified
  // canonical with no sort.
  NRel r{Schema({0, 1})};
  for (int i = 0; i < 10; ++i) r.Add({7, static_cast<Value>(i)}, i + 1);
  r.Canonicalize();
  auto run = ShipOnce(r, LineTopology(2), 0, 1, StreamOptions{4, 8, 64, 32});
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(BytesEqual(r, run.rebuilt));
  EXPECT_EQ(run.pages, 3);  // 4 + 4 + 2
}

TEST(Stream, BudgetBoundsPeakInFlightPages) {
  // 80 pages of payload through a budget of 2: backpressure must stall the
  // source rather than materialize the relation in flight.
  NRel r = RandomRel({0, 1, 2}, 700, 1 << 20, 19);
  ASSERT_GE(r.size(), 640u);
  auto run = ShipOnce(r, LineTopology(2), 0, 1, StreamOptions{8, 2, 64, 32});
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(BytesEqual(r, run.rebuilt));
  EXPECT_GT(run.pages, 2);
  EXPECT_LE(run.peak, 2);
  EXPECT_GE(run.peak, 1);
}

TEST(Stream, MultiHopRelayDeliversInOrder) {
  NRel r = RandomRel({0, 1}, 200, 1 << 16, 23);
  auto direct = ShipOnce(r, LineTopology(2), 0, 1, StreamOptions{32, 4, 64, 32});
  auto relayed = ShipOnce(r, LineTopology(4), 0, 3, StreamOptions{32, 4, 64, 32});
  ASSERT_TRUE(direct.completed && relayed.completed);
  EXPECT_TRUE(BytesEqual(direct.rebuilt, relayed.rebuilt));
  EXPECT_TRUE(BytesEqual(r, relayed.rebuilt));
  // Every page crosses three edges instead of one.
  EXPECT_GT(relayed.bits, 2 * direct.bits);
  EXPECT_GT(relayed.makespan, direct.makespan);
}

TEST(Stream, LocalDeliveryCostsNothingOnTheWire) {
  NRel r = RandomRel({0, 1}, 100, 256, 29);
  auto run = ShipOnce(r, LineTopology(2), 0, 0, StreamOptions{16, 2, 64, 32});
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(BytesEqual(r, run.rebuilt));
  EXPECT_EQ(run.pages, 0);
  EXPECT_EQ(run.bits, 0);
}

TEST(Stream, ConcurrentStreamsShareTheSourceBudget) {
  NRel a = RandomRel({0, 1}, 400, 1 << 18, 31);
  NRel b = RandomRel({2, 3}, 400, 1 << 18, 37);
  AsyncNetwork net(StarTopology(3), LinkParams{1.0, 64.0});
  StreamNet<NaturalSemiring> streams(&net, StreamOptions{16, 3, 64, 32});
  NRel got_a, got_b;
  streams.SendRelation(0, 1, a, 8, [&](NRel r) { got_a = std::move(r); });
  streams.SendRelation(0, 2, b, 8, [&](NRel r) { got_b = std::move(r); });
  net.Run();
  EXPECT_TRUE(BytesEqual(a, got_a));
  EXPECT_TRUE(BytesEqual(b, got_b));
  // Node 0 sourced both streams: its combined in-flight pages stayed within
  // the per-node budget.
  EXPECT_LE(streams.max_in_flight_pages(), 3);
  EXPECT_EQ(streams.pages_shipped(),
            static_cast<int64_t>((a.size() + 15) / 16 + (b.size() + 15) / 16));
}

}  // namespace
}  // namespace topofaq
