// ExecContext contract tests: operator statistics (calls, rows, sorts paid
// vs. skipped by the canonical-order invariant), batched-elimination
// grouping counts, scratch-buffer reuse across many calls, and the
// protocol-level stats rollup.
#include <gtest/gtest.h>

#include "faq/solvers.h"
#include "relation/exec.h"
#include "relation/ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;

NRel MakeRel(std::vector<VarId> vars, std::vector<std::vector<Value>> rows) {
  NRel r{Schema(std::move(vars))};
  for (auto& row : rows) r.Add(row, 1);
  r.Canonicalize();
  return r;
}

TEST(ExecContext, JoinCountsRowsAndCalls) {
  ExecContext ctx;
  NRel a = MakeRel({0, 1}, {{1, 10}, {2, 20}});
  NRel b = MakeRel({1, 2}, {{10, 5}, {10, 6}});
  NRel j = Join(a, b, &ctx);
  EXPECT_EQ(ctx.join.calls, 1);
  EXPECT_EQ(ctx.join.rows_in, 4);
  EXPECT_EQ(ctx.join.rows_out, static_cast<int64_t>(j.size()));
  EXPECT_GT(ctx.join.comparisons, 0);
}

TEST(ExecContext, PrefixAlignedJoinSkipsAllSorts) {
  // R(0,1) ⋈ S(0,2): the shared key {0} is a canonical schema prefix on
  // both sides, so the kernel must not sort anything.
  ExecContext ctx;
  NRel a = MakeRel({0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  NRel b = MakeRel({0, 2}, {{1, 7}, {3, 9}});
  Join(a, b, &ctx);
  EXPECT_EQ(ctx.join.sorts, 0);
  EXPECT_EQ(ctx.join.sort_skips, 2);
}

TEST(ExecContext, MismatchedKeyOrderPaysAtMostOneSort) {
  // R(0,1) ⋈ S(1,2): key {1} is a prefix of S but not of R. The left side
  // is traversed canonically (skip) and the output is emitted in order, so
  // no sort runs at all; only the probe directory is built.
  ExecContext ctx;
  NRel a = MakeRel({0, 1}, {{1, 10}, {2, 20}});
  NRel b = MakeRel({1, 2}, {{10, 5}, {20, 6}});
  NRel j = Join(a, b, &ctx);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.canonical());
  EXPECT_EQ(ctx.join.sorts, 0);
}

TEST(ExecContext, EliminateBatchesPerAggregateRun) {
  // Two same-op variables: one grouping pass (one sort/skip event). Mixed
  // ops: one pass per run.
  ExecContext ctx;
  NRel r = MakeRel({0, 1, 2}, {{1, 2, 3}, {1, 2, 4}, {2, 2, 3}});
  Eliminate(r, {1, 2}, {VarOp::kSemiringSum, VarOp::kSemiringSum}, &ctx);
  EXPECT_EQ(ctx.eliminate.sorts + ctx.eliminate.sort_skips, 1);

  ctx.ResetStats();
  Eliminate(r, {1, 2}, {VarOp::kMax, VarOp::kSemiringSum}, &ctx);
  EXPECT_EQ(ctx.eliminate.sorts + ctx.eliminate.sort_skips, 2);
}

TEST(ExecContext, EliminatingSchemaSuffixStreamsWithoutSort) {
  // Kept columns form the schema prefix when the eliminated variables are
  // the highest-positioned ones — the canonical order streams the groups.
  ExecContext ctx;
  NRel r = MakeRel({0, 1, 2}, {{1, 2, 3}, {1, 2, 4}, {2, 2, 3}});
  NRel out = Eliminate(r, {2}, {VarOp::kSemiringSum}, &ctx);
  EXPECT_EQ(ctx.eliminate.sorts, 0);
  EXPECT_EQ(ctx.eliminate.sort_skips, 1);
  EXPECT_EQ(out.schema().vars(), (std::vector<VarId>{0, 1}));
}

TEST(ExecContext, ResetAndTotals) {
  ExecContext ctx;
  NRel a = MakeRel({0}, {{1}, {2}});
  Join(a, a, &ctx);
  Project(a, {}, &ctx);
  OpStats t = ctx.Totals();
  EXPECT_EQ(t.calls, 2);
  EXPECT_FALSE(ctx.DebugString().empty());
  ctx.ResetStats();
  EXPECT_EQ(ctx.Totals().calls, 0);
}

TEST(ExecContext, ScratchReuseIsCorrectAcrossManyCalls) {
  // Hammer one context with interleaved operators; results must stay equal
  // to fresh-context runs.
  Rng rng(99);
  ExecContext ctx;
  for (int iter = 0; iter < 50; ++iter) {
    NRel a{Schema({0, 1})}, b{Schema({1, 2})};
    for (int i = 0; i < 12; ++i) {
      a.Add({rng.NextU64(3), rng.NextU64(3)}, rng.NextU64(4) + 1);
      b.Add({rng.NextU64(3), rng.NextU64(3)}, rng.NextU64(4) + 1);
    }
    a.Canonicalize();
    b.Canonicalize();
    EXPECT_TRUE(Join(a, b, &ctx).EqualsAsFunction(Join(a, b)));
    EXPECT_TRUE(Semijoin(a, b, &ctx).EqualsAsFunction(Semijoin(a, b)));
    EXPECT_TRUE(
        EliminateVar(a, 1, VarOp::kSemiringSum, &ctx)
            .EqualsAsFunction(EliminateVar(a, 1, VarOp::kSemiringSum)));
  }
}

TEST(ExecContext, SolverThreadsOneContext) {
  // YannakakisSolve over a path query populates the caller's context.
  Hypergraph h(3, {{0, 1}, {1, 2}});
  Rng rng(5);
  std::vector<NRel> rels;
  for (int e = 0; e < 2; ++e) {
    NRel r{Schema(h.edge(e))};
    for (int i = 0; i < 10; ++i)
      r.Add({rng.NextU64(3), rng.NextU64(3)}, rng.NextU64(3) + 1);
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  auto q = MakeFaqSS<NaturalSemiring>(h, rels, {0});
  ExecContext ctx;
  auto res = YannakakisSolve(q, &ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(ctx.Totals().calls, 0);
  auto oracle = BruteForceSolve(q);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(res->EqualsAsFunction(*oracle));
}

}  // namespace
}  // namespace topofaq
