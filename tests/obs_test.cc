// Observability-layer tests (src/obs/ + its wiring):
//
//  * Histogram bucket math and quantile semantics are pinned *exactly* — the
//    reported quantile is the upper edge of the rank's bucket, so the test
//    computes the same edge and demands equality, not tolerance.
//  * Concurrent recording: every increment lands (relaxed atomics lose
//    nothing), hammered from multiple threads; CI's TSan leg checks the
//    data-race side.
//  * Chrome trace JSON: well-formed (balanced, no dangling comma), spans
//    nest, and the two clock domains export as distinct pids (wall = 1,
//    simulated = 2) so the time bases can never be conflated in a viewer.
//  * Engine end-to-end: a traced Solve records every pipeline stage
//    (submit / validate / profile / plan / admit / queue_wait / execute)
//    plus at least one kernel operator span, all on the query's track, and
//    MetricsText() reports the serving counters and latency histograms.
//  * Async simulator: a traced protocol run exports a simulated-time-only
//    timeline (link transfers + node compute).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocols/async.h"
#include "protocols/distributed.h"
#include "random_instances.h"
#include "server/engine.h"

namespace topofaq {
namespace {

// ---------------------------------------------------------------------------
// Histogram: bucket math and quantile semantics, exactly.

TEST(Histogram, BucketIndexEdges) {
  obs::Histogram h(/*min_value=*/1.0);
  // Below min_value (and NaN) land in bucket 0.
  EXPECT_EQ(h.BucketIndex(0.0), 0);
  EXPECT_EQ(h.BucketIndex(0.999), 0);
  EXPECT_EQ(h.BucketIndex(std::nan("")), 0);
  // Bucket i >= 1 covers [min·2^((i-1)/4), min·2^(i/4)): four per octave.
  EXPECT_EQ(h.BucketIndex(1.0), 1);
  EXPECT_EQ(h.BucketIndex(1.18), 1);  // 2^(1/4) ≈ 1.189
  EXPECT_EQ(h.BucketIndex(1.19), 2);
  EXPECT_EQ(h.BucketIndex(2.0), 5);  // one octave = four buckets up
  // Everything at or beyond the top edge clamps into the last bucket.
  EXPECT_EQ(h.BucketIndex(1e30), obs::Histogram::kBuckets - 1);
  // BucketLowerEdge is the inverse map's left endpoint.
  EXPECT_DOUBLE_EQ(h.BucketLowerEdge(1), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketLowerEdge(5), 2.0);
}

TEST(Histogram, QuantileIsUpperBucketEdge) {
  obs::Histogram h(/*min_value=*/1.0);
  for (int i = 0; i < 90; ++i) h.Record(1.0);    // bucket 1
  for (int i = 0; i < 10; ++i) h.Record(100.0);  // bucket BucketIndex(100)
  ASSERT_EQ(h.count(), 100u);
  // p50: rank 50 falls in bucket 1 → upper edge = lower edge of bucket 2.
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), h.BucketLowerEdge(2));
  // p90: rank 90 is the last of the 1.0s — still bucket 1.
  EXPECT_DOUBLE_EQ(h.Quantile(0.90), h.BucketLowerEdge(2));
  // p95: rank 95 falls among the 100.0s.
  const int b100 = h.BucketIndex(100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), h.BucketLowerEdge(b100 + 1));
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.BucketLowerEdge(b100 + 1));
  // The upper-edge bound: reported quantile is ≥ the true value and at most
  // one bucket (2^(1/4)) above it.
  EXPECT_GE(h.Quantile(0.95), 100.0);
  EXPECT_LE(h.Quantile(0.95), 100.0 * std::exp2(0.5));
  // Fixed-point sum: 90·1 + 10·100 = 1090, within the 1/1024 granularity.
  EXPECT_NEAR(h.sum(), 1090.0, 1090.0 / 1024.0 + 1.0);
  EXPECT_DOUBLE_EQ(obs::Histogram(1.0).Quantile(0.5), 0.0);  // empty → 0
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  obs::Histogram h(/*min_value=*/1e-3);
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(0.001 * static_cast<double>(t + 1));
        c.Add();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, LabeledNameAndTextDump) {
  EXPECT_EQ(obs::LabeledName("engine.exec_ms", "class", "point"),
            "engine.exec_ms{class=\"point\"}");
  auto& reg = obs::MetricsRegistry::Shared();
  auto& c = reg.GetCounter("obs_test.counter");
  auto& h = reg.GetHistogram("obs_test.histogram", 1.0);
  c.Add(3);
  h.Record(2.0);
  const std::string dump = reg.TextDump();
  EXPECT_NE(dump.find("counter obs_test.counter"), std::string::npos);
  EXPECT_NE(dump.find("histogram obs_test.histogram count="), std::string::npos);
  // Same name → same object (registry is a process-wide singleton).
  EXPECT_EQ(&reg.GetCounter("obs_test.counter"), &c);
}

// ---------------------------------------------------------------------------
// TraceSession: JSON shape, span nesting, clock domains.

/// Minimal structural validation: balanced {} / [] outside strings and no
/// dangling comma before a closing bracket (the classic hand-rendered-JSON
/// bug). tools/check_trace_json.py does the full schema check in CI.
void CheckBalancedJson(const std::string& j) {
  int depth = 0;
  bool in_string = false;
  char prev = '\0';
  for (size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      EXPECT_NE(prev, ',') << "dangling comma at offset " << i;
      --depth;
      EXPECT_GE(depth, 0);
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Trace, ChromeJsonWellFormed) {
  obs::TraceSession ts;
  const uint32_t t1 = ts.RegisterTrack("query \"quoted\"");  // escaping path
  {
    obs::Span outer(&ts, "outer", t1);
    obs::Span inner(&ts, "inner", t1);
    inner.SetArgsJson("{\"rows\":42}");
  }
  ASSERT_EQ(ts.event_count(), 2u);
  const std::string j = ts.ToChromeJson();
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
  CheckBalancedJson(j);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"rows\":42}"), std::string::npos);
  // Metadata names both clock-domain processes.
  EXPECT_NE(j.find("\"name\":\"wall clock\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"simulated time\""), std::string::npos);
}

TEST(Trace, SpansNestOnOneTrack) {
  obs::TraceSession ts;
  {
    obs::Span outer(&ts, "outer", 0);
    { obs::Span inner(&ts, "inner", 0); }
  }
  const auto ev = ts.events();
  ASSERT_EQ(ev.size(), 2u);
  // Spans record on close, so the inner span lands first.
  const obs::TraceEvent& inner = ev[0];
  const obs::TraceEvent& outer = ev[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_GE(inner.dur_us, 0.0);
}

TEST(Trace, ClockDomainsExportAsDistinctPids) {
  obs::TraceSession ts;
  const uint32_t wall = ts.RegisterTrack("wall", obs::ClockDomain::kWall);
  const uint32_t sim =
      ts.RegisterTrack("node 0", obs::ClockDomain::kSimulated);
  { obs::Span sp(&ts, "work", wall); }
  ts.Emit("compute", sim, obs::ClockDomain::kSimulated, /*ts_us=*/1000.0,
          /*dur_us=*/250.0);
  const auto ev = ts.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].domain, obs::ClockDomain::kWall);
  EXPECT_EQ(ev[1].domain, obs::ClockDomain::kSimulated);
  const std::string j = ts.ToChromeJson();
  // Simulated span: pid 2, simulated timestamps exported 1 unit = 1 µs.
  EXPECT_NE(j.find("\"name\":\"compute\",\"ph\":\"X\",\"pid\":2"),
            std::string::npos);
  EXPECT_NE(j.find("\"ts\":1000.000,\"dur\":250.000"), std::string::npos);
  // Wall span: pid 1.
  EXPECT_NE(j.find("\"name\":\"work\",\"ph\":\"X\",\"pid\":1"),
            std::string::npos);
}

TEST(Trace, DisabledSpanIsInert) {
  // The cost contract: a Span on a null session must be safe (and free) —
  // construction, args, early close, destruction all no-ops.
  obs::Span sp(nullptr, "never", 0);
  sp.SetArgsJson("{\"ignored\":1}");
  sp.Close();
}

// ---------------------------------------------------------------------------
// Engine end-to-end: the traced pipeline and the metrics surface.

TEST(EngineObs, TracedSolveRecordsEveryPipelineStage) {
  EngineOptions opts;
  opts.parallelism = 1;
  Engine engine(opts);
  engine.EnableTracing();
  ASSERT_NE(engine.trace(), nullptr);
  auto q = RandomQuery<CountingSemiring>(StarGraph(3), 200, 16, 11, {});
  auto r = engine.Solve(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto tr = engine.DisableTracing();
  ASSERT_NE(tr, nullptr);
  EXPECT_EQ(engine.trace(), nullptr);

  const auto ev = tr->events();
  auto find = [&](const char* name) -> const obs::TraceEvent* {
    for (const auto& e : ev)
      if (std::string(e.name) == name) return &e;
    return nullptr;
  };
  const obs::TraceEvent* submit = find("submit");
  const obs::TraceEvent* execute = find("execute");
  ASSERT_NE(submit, nullptr);
  ASSERT_NE(execute, nullptr);
  for (const char* stage : {"validate", "profile", "plan", "admit"}) {
    const obs::TraceEvent* e = find(stage);
    ASSERT_NE(e, nullptr) << stage;
    // Each stage nests inside "submit" on the query's track.
    EXPECT_EQ(e->track, submit->track) << stage;
    EXPECT_GE(e->ts_us, submit->ts_us) << stage;
    EXPECT_LE(e->ts_us + e->dur_us, submit->ts_us + submit->dur_us) << stage;
  }
  // queue_wait bridges submit → execute on the same track.
  const obs::TraceEvent* qw = find("queue_wait");
  ASSERT_NE(qw, nullptr);
  EXPECT_EQ(qw->track, submit->track);
  EXPECT_GE(qw->dur_us, 0.0);
  EXPECT_EQ(execute->track, submit->track);
  EXPECT_GE(execute->ts_us + 1e-3, qw->ts_us + qw->dur_us);
  // The kernel recorded at least one operator span inside execute.
  size_t ops = 0;
  for (const auto& e : ev) {
    const std::string n = e.name;
    if (n == "join" || n == "semijoin" || n == "project" ||
        n == "eliminate" || n == "multiway") {
      ++ops;
      EXPECT_GE(e.ts_us, execute->ts_us);
      EXPECT_LE(e.ts_us + e.dur_us, execute->ts_us + execute->dur_us + 1e-3);
      // Operator spans carry their OpStats delta as args.
      EXPECT_NE(e.args_json.find("\"rows_in\""), std::string::npos);
    }
  }
  EXPECT_GT(ops, 0u);
  // Every engine-side event is wall-clock; the whole trace exports cleanly.
  for (const auto& e : ev) EXPECT_EQ(e.domain, obs::ClockDomain::kWall);
  CheckBalancedJson(tr->ToChromeJson());
}

TEST(EngineObs, MetricsTextReportsServingPath) {
  EngineOptions opts;
  opts.parallelism = 1;
  Engine engine(opts);
  auto q = RandomQuery<NaturalSemiring>(PathGraph(2), 150, 32, 7, {0});
  ASSERT_TRUE(engine.Solve(q).ok());
  const std::string text = engine.MetricsText();
  for (const char* needle :
       {"counter engine.submitted", "counter engine.completed",
        "counter engine.plan_cache.hit", "counter engine.plan_cache.miss",
        "histogram engine.queue_ms{class=\"point\"}",
        "histogram engine.exec_ms{class=\"point\"}",
        "histogram engine.bound.residual_ratio"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // The coherent snapshot (satellite of the same surface): totals add up.
  const EngineStats st = engine.stats();
  EXPECT_GE(st.submitted, 1);
  EXPECT_LE(st.completed + st.cancelled + st.failed, st.submitted);
}

TEST(EngineObs, TraceEnvKnobSetsPath) {
  setenv("TOPOFAQ_TRACE", "/tmp/obs_test_trace.json", 1);
  EXPECT_EQ(EngineOptions::FromEnv().trace_path, "/tmp/obs_test_trace.json");
  unsetenv("TOPOFAQ_TRACE");
  EXPECT_TRUE(EngineOptions::FromEnv().trace_path.empty());
}

// ---------------------------------------------------------------------------
// Async simulator: the simulated-time timeline.

TEST(AsyncObs, ProtocolRunExportsSimulatedTimeline) {
  const int leaves = 3;
  Hypergraph h = StarGraph(leaves);
  std::vector<Relation<NaturalSemiring>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    RelationBuilder<NaturalSemiring> b{Schema(h.edge(e))};
    std::vector<Value> row(h.edge(e).size(), 1);
    for (size_t i = 0; i < 400; ++i) {
      row[0] = static_cast<Value>(i);
      b.Append(row, 1);
    }
    rels.push_back(b.Build());
  }
  DistInstance<NaturalSemiring> inst;
  inst.query = MakeFaqSS<NaturalSemiring>(h, std::move(rels), {});
  inst.topology = LineTopology(leaves + 1);
  inst.owners = RoundRobinOwners(h.num_edges(), leaves);
  inst.sink = leaves;

  obs::TraceSession ts;
  AsyncProtocolOptions opts;
  opts.stream.page_rows = 64;  // several pages per relation
  opts.trace = &ts;
  auto r = RunTrivialProtocolAsync(inst, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const auto ev = ts.events();
  ASSERT_FALSE(ev.empty());
  size_t pages = 0, computes = 0;
  for (const auto& e : ev) {
    // Everything the simulator records is simulated time, non-negative.
    EXPECT_EQ(e.domain, obs::ClockDomain::kSimulated);
    EXPECT_GE(e.ts_us, 0.0);
    EXPECT_GE(e.dur_us, 0.0);
    const std::string n = e.name;
    if (n == "page" || n == "ctl") ++pages;
    if (n == "solve") ++computes;
  }
  EXPECT_GT(pages, 0u);    // link-transfer spans
  EXPECT_GT(computes, 0u); // node-compute spans
  CheckBalancedJson(ts.ToChromeJson());
}

}  // namespace
}  // namespace topofaq
