// Compressed-column tests (docs/kernel.md, "Compressed columns"): the
// bit-packing primitives, EncodedColumn round trips and code-space seeks,
// the encode-on-canonicalize policy, and — the core guarantee — that every
// operator produces byte-identical canonical output whether its inputs are
// plain, dictionary-encoded, FOR-encoded, or mixed, across four semirings
// and parallelism levels, and that the streaming transport ships encoded
// pages bit-identically while paying fewer payload bits than the plain
// r·log2(D) cost model.
//
// CI also runs the whole test matrix with TOPOFAQ_ENCODING=dict and =for,
// which forces every Canonicalize in every suite through the encoded
// kernel instantiations.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "bit_identity.h"
#include "graphalg/topologies.h"
#include "hypergraph/generators.h"
#include "network/stream.h"
#include "protocols/async.h"
#include "protocols/distributed.h"
#include "random_instances.h"
#include "relation/encoding.h"
#include "relation/multiway.h"
#include "relation/ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

using NRel = Relation<NaturalSemiring>;

// ---------------------------------------------------------------------------
// Bit-packing primitives
// ---------------------------------------------------------------------------

TEST(BitPack, RoundTripEveryWidth) {
  Rng rng(7);
  for (int width = 1; width <= 64; ++width) {
    const uint64_t mask = PackMask(width);
    const size_t n = 131;  // odd count: codes straddle word boundaries
    std::vector<uint64_t> vals(n);
    for (auto& v : vals) v = rng.NextU64() & mask;
    std::vector<uint64_t> words(PackedWords(n, width), 0);
    for (size_t i = 0; i < n; ++i) PackAt(words.data(), i, width, vals[i]);
    for (size_t i = 0; i < n; ++i)
      ASSERT_EQ(UnpackAt(words.data(), i, width, mask), vals[i])
          << "width " << width << " pos " << i;
    std::vector<uint64_t> out(n);
    UnpackRange(words.data(), 0, n, width, out.data());
    EXPECT_EQ(out, vals) << "width " << width;
  }
}

TEST(BitPack, MaskAndWordCounts) {
  EXPECT_EQ(PackMask(1), 1ull);
  EXPECT_EQ(PackMask(63), ~0ull >> 1);
  EXPECT_EQ(PackMask(64), ~0ull);
  // 64 three-bit codes = 192 bits = 3 words, +1 padding.
  EXPECT_EQ(PackedWords(64, 3), 4u);
  EXPECT_EQ(PackedWords(0, 17), 1u);  // padding word alone
}

// ---------------------------------------------------------------------------
// EncodedColumn
// ---------------------------------------------------------------------------

TEST(EncodedColumn, ForRoundTripAndSeeks) {
  // Sorted column with a large base: FOR stores narrow deltas.
  std::vector<Value> col;
  for (uint64_t i = 0; i < 500; ++i) col.push_back(1'000'000 + i * 3);
  const EncodedColumn e = EncodedColumn::For(col, col.front(), col.back());
  ASSERT_EQ(e.encoding, ColumnEncoding::kFor);
  EXPECT_LT(e.width, 12);  // span 1497 -> 11 bits, not 64
  for (size_t i = 0; i < col.size(); ++i) ASSERT_EQ(e.At(i), col[i]);
  std::vector<Value> dec(col.size());
  e.DecodeInto(0, col.size(), dec.data());
  EXPECT_EQ(dec, col);
  // LowerCode/UpperCode are the code-space images of lower/upper_bound.
  for (Value key : {Value{0}, col.front(), col.front() + 1, col[250],
                    col.back(), col.back() + 7}) {
    const auto lb = std::lower_bound(col.begin(), col.end(), key) - col.begin();
    const auto ub = std::upper_bound(col.begin(), col.end(), key) - col.begin();
    // Codes are monotone in value, so comparing stored codes against the
    // translated key code reproduces the value-space bounds.
    size_t lpos = 0, upos = 0;
    while (lpos < e.rows && e.CodeAt(lpos) < e.LowerCode(key)) ++lpos;
    while (upos < e.rows && e.CodeAt(upos) < e.UpperCode(key)) ++upos;
    EXPECT_EQ(static_cast<int64_t>(lpos), lb) << key;
    EXPECT_EQ(static_cast<int64_t>(upos), ub) << key;
  }
  // Top-of-domain strict seek: UpperCode saturates to the ~0ull sentinel.
  EXPECT_EQ(e.UpperCode(~0ull), ~0ull);
}

TEST(EncodedColumn, DictRoundTripAndSeeks) {
  // Skewed low-cardinality column (sorted, as in canonical storage).
  std::vector<Value> col;
  for (uint64_t v : {5u, 5u, 5u, 9u, 9u, 1000u, 1000u, 1000u, 1000u, 4096u})
    col.push_back(v);
  const EncodedColumn e =
      EncodedColumn::Dict(col, std::vector<Value>{5, 9, 1000, 4096});
  ASSERT_EQ(e.encoding, ColumnEncoding::kDict);
  EXPECT_EQ(e.width, 2);
  EXPECT_EQ(e.code_domain(), 4u);
  for (size_t i = 0; i < col.size(); ++i) ASSERT_EQ(e.At(i), col[i]);
  // Code order == value order (the dictionary is sorted).
  for (size_t i = 1; i < col.size(); ++i)
    EXPECT_LE(e.CodeAt(i - 1), e.CodeAt(i));
  EXPECT_EQ(e.LowerCode(5), 0u);
  EXPECT_EQ(e.LowerCode(6), 1u);    // between entries: next code
  EXPECT_EQ(e.UpperCode(9), 2u);
  EXPECT_EQ(e.LowerCode(9999), 4u);  // past every entry: == dict size
}

TEST(EncodedColumn, ScanChecksumMatchesNaiveFold) {
  // The fused (possibly vectorized) fold must agree bit-for-bit with the
  // naive per-row Σ (3·value + annot) across encodings, widths above and
  // below the SIMD eligibility cut, unaligned begins, and short tails.
  Rng rng(77);
  for (const size_t n : {size_t{3}, size_t{257}, size_t{4096}}) {
    for (const bool wide : {false, true}) {
      std::vector<Value> col(n);
      const uint64_t span = wide ? (uint64_t{1} << 40) : 900;
      for (auto& v : col) v = 1'000'000 + rng.NextU64(span);
      std::sort(col.begin(), col.end());
      std::vector<uint64_t> annots(n);
      for (auto& a : annots) a = rng.NextU64(1'000'000);
      const Value mn = col.front();
      const Value mx = col.back();
      std::vector<Value> d(col);
      d.erase(std::unique(d.begin(), d.end()), d.end());
      const EncodedColumn forenc = EncodedColumn::For(col, mn, mx);
      const EncodedColumn dictenc = EncodedColumn::Dict(col, d);
      for (const EncodedColumn* e : {&forenc, &dictenc}) {
        for (const size_t begin : {size_t{0}, size_t{1}, n / 3}) {
          for (const size_t end : {n, n - 1, begin}) {
            if (end < begin) continue;
            uint64_t naive = 0;
            for (size_t i = begin; i < end; ++i)
              naive += 3 * e->At(i) + annots[i];
            ASSERT_EQ(e->ScanChecksum(begin, end, annots.data()), naive)
                << "n=" << n << " wide=" << wide << " enc=" << int(e->encoding)
                << " range=[" << begin << "," << end << ")";
          }
        }
      }
    }
  }
}

TEST(EncodedColumn, SliceSharesCodeSpace) {
  std::vector<Value> col;
  for (uint64_t i = 0; i < 100; ++i) col.push_back(i / 7);
  std::vector<Value> dict;
  for (uint64_t v = 0; v < 15; ++v) dict.push_back(v);
  const EncodedColumn src = EncodedColumn::Dict(col, dict);
  // First page ships the dictionary; later pages elide it but keep the
  // same code space, so the sink's cached dictionary still decodes them.
  const EncodedColumn first = EncodedColumn::Slice(src, 0, 40, true);
  const EncodedColumn later = EncodedColumn::Slice(src, 40, 100, false);
  EXPECT_EQ(first.dict, src.dict);
  EXPECT_TRUE(later.dict.empty());
  EXPECT_EQ(later.width, src.width);
  for (size_t i = 0; i < 40; ++i) ASSERT_EQ(first.At(i), col[i]);
  for (size_t i = 0; i < 60; ++i)
    ASSERT_EQ(src.dict[later.CodeAt(i)], col[40 + i]);
}

// ---------------------------------------------------------------------------
// Encode-on-canonicalize policy
// ---------------------------------------------------------------------------

TEST(EncodingPolicy, ForcedModesEncodeUnconditionally) {
  std::vector<Value> tiny{3, 1, 4, 1, 5};
  const ColumnStats st = ColumnStats::Of(tiny);
  EXPECT_EQ(ChooseAndEncode(tiny, st, EncodingMode::kForceFor, false).encoding,
            ColumnEncoding::kFor);
  EXPECT_EQ(ChooseAndEncode(tiny, st, EncodingMode::kForceDict, false).encoding,
            ColumnEncoding::kDict);
  EXPECT_EQ(ChooseAndEncode(tiny, st, EncodingMode::kPlain, false).encoding,
            ColumnEncoding::kPlain);
}

TEST(EncodingPolicy, AutoSkipsShortColumns) {
  std::vector<Value> col(kEncodeMinRows - 1, 7);
  EXPECT_EQ(ChooseAndEncode(col, ColumnStats::Of(col), EncodingMode::kAuto,
                            true)
                .encoding,
            ColumnEncoding::kPlain);
}

TEST(EncodingPolicy, AutoPrefersForOnLeadingNarrowColumn) {
  // A sorted leading key column over a narrow domain: classic FOR target.
  std::vector<Value> col;
  for (size_t i = 0; i < 2 * kEncodeMinRows; ++i)
    col.push_back(1u << 20 | (i / 3));
  const EncodedColumn e =
      ChooseAndEncode(col, ColumnStats::Of(col), EncodingMode::kAuto, true);
  EXPECT_EQ(e.encoding, ColumnEncoding::kFor);
  EXPECT_LE(e.width, 13);  // ~2730 distinct deltas
}

TEST(EncodingPolicy, AutoPicksDictOnLowCardinalityRuns) {
  // Long runs over 16 distinct wide values: run_heads tiny, FOR span huge.
  std::vector<Value> col;
  for (size_t i = 0; i < 2 * kEncodeMinRows; ++i)
    col.push_back((i / 512) * 0x0123456789abull);
  const EncodedColumn e =
      ChooseAndEncode(col, ColumnStats::Of(col), EncodingMode::kAuto, false);
  EXPECT_EQ(e.encoding, ColumnEncoding::kDict);
  EXPECT_LE(e.width, 5);
}

TEST(EncodingPolicy, AutoLeavesWideRandomColumnsPlain) {
  // Full-width random values: neither encoding halves the payload.
  Rng rng(13);
  std::vector<Value> col(2 * kEncodeMinRows);
  for (auto& v : col) v = rng.NextU64();
  EXPECT_EQ(ChooseAndEncode(col, ColumnStats::Of(col), EncodingMode::kAuto,
                            false)
                .encoding,
            ColumnEncoding::kPlain);
}

// ---------------------------------------------------------------------------
// Relation round trips
// ---------------------------------------------------------------------------

TEST(RelationEncoding, EncodeDecodeRoundTrip) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  NRel base = RandomRelation<NaturalSemiring>({0, 1}, 6000, 4096, 21, 2);
  ASSERT_FALSE(base.any_encoded());
  for (EncodingMode m : {EncodingMode::kForceDict, EncodingMode::kForceFor}) {
    NRel enc = base;
    {
      ScopedEncodingMode force(m);
      enc.EncodeColumns();
    }
    ASSERT_TRUE(enc.any_encoded());
    // Every accessor decodes to the same values.
    for (size_t j = 0; j < enc.arity(); ++j) {
      const ColView v = enc.view(j);
      for (size_t i = 0; i < enc.size(); ++i)
        ASSERT_EQ(v.At(i), base.col(j)[i]);
    }
    EXPECT_TRUE(BytesEqual(enc, base));  // columns() decodes
    // Packed codes pin fewer bytes than the raw columns.
    EXPECT_LT(enc.ResidentKeyBytes(), base.ResidentKeyBytes());
    enc.DecodeAll();
    EXPECT_FALSE(enc.any_encoded());
    EXPECT_TRUE(BytesEqual(enc, base));
  }
}

TEST(RelationEncoding, MutationDecodesFirst) {
  ScopedEncodingMode force(EncodingMode::kForceFor);
  NRel r = RandomRelation<NaturalSemiring>({0, 1}, 100, 32, 5);
  ASSERT_TRUE(r.any_encoded());
  r.Add({99, 99}, 3);  // mutators drop to plain storage...
  EXPECT_FALSE(r.canonical());
  r.Canonicalize();  // ...and canonicalize re-encodes
  EXPECT_TRUE(r.any_encoded());
  EXPECT_EQ(r.at(r.size() - 1, 0), 99u);
}

TEST(RelationEncoding, AutoEncodingPreservesBytes) {
  // Auto mode on a large skewed relation: encoded and plain builds of the
  // same rows must decode identically.
  ScopedEncodingMode plain(EncodingMode::kPlain);
  NRel base = RandomRelation<NaturalSemiring>({0, 1, 2}, 20000, 256, 33);
  NRel enc;
  {
    ScopedEncodingMode autom(EncodingMode::kAuto);
    enc = RandomRelation<NaturalSemiring>({0, 1, 2}, 20000, 256, 33);
  }
  EXPECT_TRUE(enc.any_encoded());  // 20k rows over a 256-value domain
  EXPECT_TRUE(BytesEqual(enc, base));
}

// ---------------------------------------------------------------------------
// Operator differentials: plain vs dict vs FOR vs mixed, 4 semirings,
// parallelism {1, 2, hw}
// ---------------------------------------------------------------------------

/// Re-encodes a copy of `r` under `m` (kPlain returns a decoded copy).
template <CommutativeSemiring S>
Relation<S> Recode(const Relation<S>& r, EncodingMode m) {
  Relation<S> out = r;
  ScopedEncodingMode scope(m);
  if (m == EncodingMode::kPlain)
    out.DecodeAll();
  else
    out.EncodeColumns();
  return out;
}

/// Runs Join/Semijoin/Project/Eliminate on (left, right) under every
/// encoding pairing and parallelism level; all results must match the
/// all-plain serial bytes. Outputs are built under kPlain scope so the
/// comparison isolates *input* encodings (output encoding is covered by
/// the round-trip tests above).
template <CommutativeSemiring S>
void CheckOpsEncodingInvariant(const Relation<S>& left,
                               const Relation<S>& right, const char* what) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  ExecContext serial;
  serial.parallelism = 1;
  const Relation<S> join0 = Join(left, right, &serial);
  const Relation<S> semi0 = Semijoin(left, right, &serial);
  const Relation<S> proj0 = Project(left, {left.schema().var(0)}, &serial);
  const Relation<S> elim0 =
      Eliminate(left, {left.schema().var(left.arity() - 1)},
                {VarOp::kSemiringSum}, &serial);
  const EncodingMode modes[] = {EncodingMode::kPlain, EncodingMode::kForceDict,
                                EncodingMode::kForceFor};
  for (EncodingMode lm : modes) {
    for (EncodingMode rm : modes) {
      const Relation<S> l = Recode(left, lm);
      const Relation<S> r = Recode(right, rm);
      for (int p : {1, 2, hw}) {
        ExecContext ctx;
        ctx.parallelism = p;
        SCOPED_TRACE(std::string(what) + " lm=" + std::to_string(int(lm)) +
                     " rm=" + std::to_string(int(rm)) + " p=" +
                     std::to_string(p));
        EXPECT_TRUE(BytesEqual(Join(l, r, &ctx), join0));
        EXPECT_TRUE(BytesEqual(Semijoin(l, r, &ctx), semi0));
        EXPECT_TRUE(BytesEqual(Project(l, {l.schema().var(0)}, &ctx), proj0));
        EXPECT_TRUE(BytesEqual(
            Eliminate(l, {l.schema().var(l.arity() - 1)},
                      {VarOp::kSemiringSum}, &ctx),
            elim0));
      }
    }
  }
}

template <CommutativeSemiring S>
void RunEncodedSemiringSuite(uint64_t seed) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  const size_t n = 5000;  // above kEncodeMinRows and kParallelMinRows
  // Skewed keys: long runs, where dictionaries actually engage.
  CheckOpsEncodingInvariant<S>(RandomRelation<S>({0, 1}, n, 5000, seed, 2),
                               RandomRelation<S>({1, 2}, n, 5000, seed + 1, 2),
                               "skewed probe join");
  // Prefix-aligned merge path.
  CheckOpsEncodingInvariant<S>(RandomRelation<S>({0, 1}, n, 256, seed + 2),
                               RandomRelation<S>({0, 2}, n, 256, seed + 3),
                               "prefix merge join");
}

TEST(EncodedOps, NaturalSemiring) {
  RunEncodedSemiringSuite<NaturalSemiring>(501);
}
TEST(EncodedOps, CountingSemiring) {
  RunEncodedSemiringSuite<CountingSemiring>(502);
}
TEST(EncodedOps, MinPlusSemiring) {
  RunEncodedSemiringSuite<MinPlusSemiring>(503);
}
TEST(EncodedOps, Gf2Semiring) { RunEncodedSemiringSuite<Gf2Semiring>(504); }

TEST(EncodedOps, MultiwayTriangleMatchesPlain) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  using S = NaturalSemiring;
  const Relation<S> r = RandomRelation<S>({0, 1}, 5000, 48, 601, 1);
  const Relation<S> s = RandomRelation<S>({1, 2}, 5000, 48, 602, 1);
  const Relation<S> t = RandomRelation<S>({0, 2}, 5000, 48, 603, 1);
  ExecContext serial;
  serial.parallelism = 1;
  const Relation<S> base =
      MultiwayJoin(std::vector<Relation<S>>{r, s, t}, &serial);
  ASSERT_GT(base.size(), 0u);
  for (EncodingMode m : {EncodingMode::kForceDict, EncodingMode::kForceFor}) {
    for (int p : {1, 2}) {
      ExecContext ctx;
      ctx.parallelism = p;
      SCOPED_TRACE("mode " + std::to_string(int(m)) + " p " +
                   std::to_string(p));
      EXPECT_TRUE(BytesEqual(
          MultiwayJoin(std::vector<Relation<S>>{Recode(r, m), Recode(s, m),
                                                Recode(t, m)},
                       &ctx),
          base));
    }
  }
  // Mixed: each input under a different encoding.
  ExecContext ctx;
  EXPECT_TRUE(BytesEqual(
      MultiwayJoin(
          std::vector<Relation<S>>{Recode(r, EncodingMode::kForceDict),
                                   Recode(s, EncodingMode::kForceFor),
                                   Recode(t, EncodingMode::kPlain)},
          &ctx),
      base));
}

TEST(EncodedOps, EliminateBatchedFoldMatchesPlain) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  using S = MinPlusSemiring;
  const Relation<S> r = RandomRelation<S>({0, 1, 2, 3}, 6000, 16, 71, 1);
  ExecContext serial;
  serial.parallelism = 1;
  const Relation<S> base =
      Eliminate(r, {3, 2}, {VarOp::kSemiringSum, VarOp::kSemiringSum},
                &serial);
  for (EncodingMode m : {EncodingMode::kForceDict, EncodingMode::kForceFor}) {
    ExecContext ctx;
    ctx.parallelism = 2;
    EXPECT_TRUE(BytesEqual(
        Eliminate(Recode(r, m), {3, 2},
                  {VarOp::kSemiringSum, VarOp::kSemiringSum}, &ctx),
        base));
  }
}

// ---------------------------------------------------------------------------
// Transport: encoded pages are bit-identical and cheaper than plain
// ---------------------------------------------------------------------------

TEST(EncodedStream, RoundTripIsBitIdenticalAndCheaper) {
  ScopedEncodingMode force(EncodingMode::kForceDict);
  NRel r = RandomRelation<NaturalSemiring>({0, 1, 2}, 5000, 64, 81, 2);
  ASSERT_TRUE(r.any_encoded());
  AsyncNetwork net(LineTopology(2), LinkParams{1.0, 64.0});
  StreamNet<NaturalSemiring> streams(&net, StreamOptions{64, 4, 64, 32});
  NRel rebuilt;
  bool done = false;
  streams.SendRelation(0, 1, r, /*bits_per_attr=*/32, [&](NRel got) {
    rebuilt = std::move(got);
    done = true;
  });
  net.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(BytesEqual(r, rebuilt));
  // Narrow dictionary codes beat the 32-bit plain model by a wide margin.
  EXPECT_LT(streams.payload_bits_encoded(), streams.payload_bits_plain());
  EXPECT_EQ(streams.payload_bits_plain(), r.EncodedBits(32));
}

template <CommutativeSemiring S>
DistInstance<S> SkewedInstance(int seed, Graph g) {
  Rng rng(seed);
  Hypergraph h = RandomAcyclicHypergraph(4, 3, &rng);
  DistInstance<S> inst;
  std::vector<Relation<S>> rels;
  for (int e = 0; e < h.num_edges(); ++e) {
    // Low cardinality, wide magnitude, large common base: the plain
    // r·log2(D) model pays for the magnitude, dictionary codes only for
    // the cardinality, and FOR deltas only for the span above the base.
    Relation<S> r{Schema(h.edge(e))};
    std::vector<Value> row(r.arity());
    for (int i = 0; i < 5000; ++i) {
      for (auto& v : row)
        v = (Value{1} << 30) + rng.NextU64(16) * 1'000'003;
      r.Add(row, TestAnnot<S>(rng.NextU64(1 << 20)));
    }
    r.Canonicalize();
    rels.push_back(std::move(r));
  }
  inst.query = MakeFaqSS<S>(h, std::move(rels), {});
  inst.topology = std::move(g);
  inst.owners = RoundRobinOwners(h.num_edges(), inst.topology.num_nodes());
  inst.sink = inst.topology.num_nodes() - 1;
  return inst;
}

TEST(EncodedStream, AsyncProtocolsMatchSyncUnderForcedEncodings) {
  ScopedEncodingMode plain(EncodingMode::kPlain);
  auto inst = SkewedInstance<NaturalSemiring>(901, LineTopology(4));
  auto sync = RunTrivialProtocol(inst);
  ASSERT_TRUE(sync.ok());
  for (EncodingMode m : {EncodingMode::kForceDict, EncodingMode::kForceFor}) {
    auto enc = inst;
    {
      ScopedEncodingMode force(m);
      for (auto& r : enc.query.relations) r.EncodeColumns();
    }
    ScopedEncodingMode scope(m);  // intermediates re-encode under m too
    AsyncProtocolOptions opts;
    opts.stream.page_rows = 64;
    auto async = RunTrivialProtocolAsync(enc, opts);
    ASSERT_TRUE(async.ok()) << int(m);
    EXPECT_TRUE(BytesEqual(sync->answer, async->answer)) << int(m);
    // The encoded payload accounting reflects real savings, and the plain
    // accounting matches the cost model the sync ledger charges.
    EXPECT_GT(async->stats.payload_bits_plain, 0);
    EXPECT_LT(async->stats.payload_bits_encoded,
              async->stats.payload_bits_plain);
  }
}

}  // namespace
}  // namespace topofaq
