// Property tests: every semiring in the library satisfies the commutative
// semiring axioms of the paper's Section 1 footnote 2, on randomly sampled
// values (typed parameterized suite).
#include <gtest/gtest.h>

#include <vector>

#include "semiring/semiring.h"
#include "semiring/variable_ops.h"
#include "util/rng.h"

namespace topofaq {
namespace {

// Per-semiring random value generation confined to well-behaved ranges
// (e.g. non-negative for MaxProduct, finite for MinPlus).
template <typename S>
typename S::Value RandomValue(Rng* rng);

template <>
BooleanSemiring::Value RandomValue<BooleanSemiring>(Rng* rng) {
  return static_cast<uint8_t>(rng->NextU64(2));
}
template <>
Gf2Semiring::Value RandomValue<Gf2Semiring>(Rng* rng) {
  return static_cast<uint8_t>(rng->NextU64(2));
}
template <>
NaturalSemiring::Value RandomValue<NaturalSemiring>(Rng* rng) {
  return rng->NextU64(1000);
}
template <>
CountingSemiring::Value RandomValue<CountingSemiring>(Rng* rng) {
  // Small integers: keeps + and * exact in double, so associativity and
  // distributivity hold exactly.
  return static_cast<double>(rng->NextU64(64));
}

template <typename S>
class SemiringAxioms : public ::testing::Test {};

using ExactSemirings =
    ::testing::Types<BooleanSemiring, Gf2Semiring, NaturalSemiring,
                     CountingSemiring>;
TYPED_TEST_SUITE(SemiringAxioms, ExactSemirings);

TYPED_TEST(SemiringAxioms, AdditiveIdentity) {
  using S = TypeParam;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomValue<S>(&rng);
    EXPECT_EQ(S::Add(a, S::Zero()), a);
    EXPECT_EQ(S::Add(S::Zero(), a), a);
  }
}

TYPED_TEST(SemiringAxioms, MultiplicativeIdentity) {
  using S = TypeParam;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomValue<S>(&rng);
    EXPECT_EQ(S::Multiply(a, S::One()), a);
    EXPECT_EQ(S::Multiply(S::One(), a), a);
  }
}

TYPED_TEST(SemiringAxioms, AddCommutesAndAssociates) {
  using S = TypeParam;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomValue<S>(&rng), b = RandomValue<S>(&rng),
         c = RandomValue<S>(&rng);
    EXPECT_EQ(S::Add(a, b), S::Add(b, a));
    EXPECT_EQ(S::Add(S::Add(a, b), c), S::Add(a, S::Add(b, c)));
  }
}

TYPED_TEST(SemiringAxioms, MultiplyCommutesAndAssociates) {
  using S = TypeParam;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomValue<S>(&rng), b = RandomValue<S>(&rng),
         c = RandomValue<S>(&rng);
    EXPECT_EQ(S::Multiply(a, b), S::Multiply(b, a));
    EXPECT_EQ(S::Multiply(S::Multiply(a, b), c),
              S::Multiply(a, S::Multiply(b, c)));
  }
}

TYPED_TEST(SemiringAxioms, Distributivity) {
  using S = TypeParam;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomValue<S>(&rng), b = RandomValue<S>(&rng),
         c = RandomValue<S>(&rng);
    EXPECT_EQ(S::Multiply(a, S::Add(b, c)),
              S::Add(S::Multiply(a, b), S::Multiply(a, c)));
  }
}

TYPED_TEST(SemiringAxioms, ZeroAnnihilates) {
  using S = TypeParam;
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomValue<S>(&rng);
    EXPECT_EQ(S::Multiply(a, S::Zero()), S::Zero());
    EXPECT_EQ(S::Multiply(S::Zero(), a), S::Zero());
  }
}

TYPED_TEST(SemiringAxioms, IsZeroRecognizesZeroOnly) {
  using S = TypeParam;
  EXPECT_TRUE(S::IsZero(S::Zero()));
  EXPECT_FALSE(S::IsZero(S::One()));
}

// MinPlus and MaxProduct: identities and laws (double arithmetic, min/max
// and +/* on small integers are exact).
TEST(MinPlus, Axioms) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    double a = static_cast<double>(rng.NextU64(100));
    double b = static_cast<double>(rng.NextU64(100));
    double c = static_cast<double>(rng.NextU64(100));
    using S = MinPlusSemiring;
    EXPECT_EQ(S::Add(a, S::Zero()), a);
    EXPECT_EQ(S::Multiply(a, S::One()), a);
    EXPECT_EQ(S::Add(a, b), S::Add(b, a));
    EXPECT_EQ(S::Multiply(a, S::Add(b, c)),
              S::Add(S::Multiply(a, b), S::Multiply(a, c)));
    EXPECT_EQ(S::Multiply(a, S::Zero()), S::Zero());
  }
  EXPECT_TRUE(MinPlusSemiring::IsZero(MinPlusSemiring::Zero()));
  EXPECT_FALSE(MinPlusSemiring::IsZero(3.0));
}

TEST(MaxProduct, Axioms) {
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    double a = static_cast<double>(rng.NextU64(30));
    double b = static_cast<double>(rng.NextU64(30));
    double c = static_cast<double>(rng.NextU64(30));
    using S = MaxProductSemiring;
    EXPECT_EQ(S::Add(a, S::Zero()), a);
    EXPECT_EQ(S::Multiply(a, S::One()), a);
    EXPECT_EQ(S::Add(a, b), S::Add(b, a));
    // Distributivity needs non-negative values (true here).
    EXPECT_EQ(S::Multiply(a, S::Add(b, c)),
              S::Add(S::Multiply(a, b), S::Multiply(a, c)));
  }
}

TEST(Gf2, MatchesModTwoArithmetic) {
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b) {
      EXPECT_EQ(Gf2Semiring::Add(a, b), (a + b) % 2);
      EXPECT_EQ(Gf2Semiring::Multiply(a, b), (a * b) % 2);
    }
}

TEST(VarOps, ApplySelectsCorrectAggregate) {
  using S = CountingSemiring;
  EXPECT_EQ(ApplyVarOp<S>(VarOp::kSemiringSum, 3.0, 4.0), 7.0);
  EXPECT_EQ(ApplyVarOp<S>(VarOp::kMax, 3.0, 4.0), 4.0);
  EXPECT_EQ(ApplyVarOp<S>(VarOp::kMin, 3.0, 4.0), 3.0);
  EXPECT_EQ(ApplyVarOp<S>(VarOp::kProduct, 3.0, 4.0), 12.0);
}

TEST(VarOps, NamesAreStable) {
  EXPECT_STREQ(VarOpName(VarOp::kSemiringSum), "sum");
  EXPECT_STREQ(VarOpName(VarOp::kMax), "max");
  EXPECT_STREQ(VarOpName(VarOp::kMin), "min");
  EXPECT_STREQ(VarOpName(VarOp::kProduct), "prod");
}

TEST(Semirings, NamesAreDistinct) {
  std::vector<std::string> names{BooleanSemiring::kName,  CountingSemiring::kName,
                                 NaturalSemiring::kName,  MinPlusSemiring::kName,
                                 MaxProductSemiring::kName, Gf2Semiring::kName};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace topofaq
