// The kernel's determinism contract as one shared gtest predicate: two
// relations are bit-identical when their schemas match, their canonical
// flags match, every column compares byte-equal, and every annotation
// compares bit-pattern-equal (memcmp, so float semirings compare
// representations — NaN payloads, signed zeros — not values). Every
// differential suite (parallelism levels, multiway vs pairwise oracle,
// async vs sync protocols, streamed vs source relations) asserts through
// this one definition so the contract cannot silently diverge per file.
#ifndef TOPOFAQ_TESTS_BIT_IDENTITY_H_
#define TOPOFAQ_TESTS_BIT_IDENTITY_H_

#include <gtest/gtest.h>

#include <cstring>

#include "relation/relation.h"

namespace topofaq {

template <CommutativeSemiring S>
::testing::AssertionResult BytesEqual(const Relation<S>& a,
                                      const Relation<S>& b) {
  if (!(a.schema() == b.schema()))
    return ::testing::AssertionFailure() << "schemas differ";
  if (a.canonical() != b.canonical())
    return ::testing::AssertionFailure() << "canonical flags differ";
  if (a.columns() != b.columns())
    return ::testing::AssertionFailure()
           << "column bytes differ (" << a.size() << " vs " << b.size()
           << " rows)";
  if (a.annots().size() != b.annots().size())
    return ::testing::AssertionFailure() << "annot counts differ";
  for (size_t i = 0; i < a.annots().size(); ++i)
    if (std::memcmp(&a.annots()[i], &b.annots()[i],
                    sizeof(typename S::Value)) != 0)
      return ::testing::AssertionFailure() << "annot " << i << " differs";
  return ::testing::AssertionSuccess();
}

}  // namespace topofaq

#endif  // TOPOFAQ_TESTS_BIT_IDENTITY_H_
